"""Fig 5 — scalability on asymmetric CMPs (eight panels).

Each panel fixes a Table III class and sweeps the large-core area rl over
1..256 BCEs for small-core sizes r in {1, 4, 16} — the paper's Eq 5 with
the reduction running on the large core, linear growth.
"""

from __future__ import annotations

import numpy as np

from repro.core import gridkernels, merging
from repro.core.classes import TABLE3_CLASSES
from repro.experiments.report import ExperimentReport, PaperComparison, series_table
from repro.pipeline import ExperimentSpec, Stage, model_eval_grid_unit, resolve_units

__all__ = ["run", "declare_units", "evaluate_curves", "PANEL_ORDER", "SPEC"]

#: panels (a)–(h) in the paper's order: (parallelism, constant, reduction)
PANEL_ORDER = (
    ("a", "emb", "high", "low"),
    ("b", "non-emb", "high", "low"),
    ("c", "emb", "high", "high"),
    ("d", "non-emb", "high", "high"),
    ("e", "emb", "moderate", "low"),
    ("f", "non-emb", "moderate", "low"),
    ("g", "emb", "moderate", "high"),
    ("h", "non-emb", "moderate", "high"),
)

_R_CHOICES = (1.0, 4.0, 16.0)


def evaluate_curves(n: int) -> dict:
    """All 24 Fig 5 curves in one vectorized grid evaluation per small-core
    choice (the eight panels broadcast against the rl axis)."""
    by_key = {(c.parallelism, c.constant, c.reduction): c for c in TABLE3_CLASSES}
    params = [by_key[(par, con, red)].params()
              for _, par, con, red in PANEL_ORDER]
    f = np.asarray([p.f for p in params])[:, None]
    con = np.asarray([p.fcon_share for p in params])[:, None]
    ored = np.asarray([p.fored_share for p in params])[:, None]
    grid = merging.power_of_two_sizes(n)
    out: dict = {}
    for r in _R_CHOICES:
        sizes = grid[grid >= r]
        sp = gridkernels.merging_asymmetric(f, con, ored, n, sizes, float(r))
        out[f"r={int(r)}"] = {
            "sizes": sizes,
            "panels": {panel: sp[i] for i, (panel, *_key) in enumerate(PANEL_ORDER)},
        }
    return out


def declare_units(n: int = 256) -> list:
    """The whole figure's model evaluation as one grid unit."""
    return [model_eval_grid_unit(evaluate_curves, {"n": n},
                                 label=f"fig5-grid@n={n}")]


def run(n: int = 256) -> ExperimentReport:
    """Regenerate all eight Fig 5 panels."""
    report = ExperimentReport("fig5", "Scalability on asymmetric CMPs")
    [unit] = declare_units(n)
    payload = resolve_units([unit])[unit.key]
    curves: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    for panel, par, con, red in PANEL_ORDER:
        series = {}
        x_axis = None
        for r in _R_CHOICES:
            block = payload[f"r={int(r)}"]
            sizes = np.asarray(block["sizes"])
            sp = np.asarray(block["panels"][panel])
            curves[(panel, r)] = (sizes, sp)
            if x_axis is None or len(sizes) > len(x_axis):
                x_axis = sizes
        # pad shorter curves (rl >= r constraint) with NaN for the table
        for r in _R_CHOICES:
            sizes, sp = curves[(panel, r)]
            padded = np.full(len(x_axis), np.nan)
            padded[len(x_axis) - len(sizes):] = sp
            series[f"r={int(r)}"] = padded
        report.add_table(series_table(
            f"Fig 5({panel}) — {par}, {con} constant, {red} overhead",
            "rl (BCEs, large core)", [int(s) for s in x_axis], series,
        ))

    def peak(panel: str, r: float) -> float:
        return float(np.nanmax(curves[(panel, r)][1]))

    # text anchors from Section V.D.2
    report.add_comparison(PaperComparison(
        claim="5(d): ACMP peak 64.2 with r=4", paper_value=64.2,
        measured_value=peak("d", 4.0), tolerance=0.01,
    ))
    report.add_comparison(PaperComparison(
        claim="5(h): r=1 curve peaks at 22.6", paper_value=22.6,
        measured_value=peak("h", 1.0), tolerance=0.02,
    ))
    report.add_comparison(PaperComparison(
        claim="5(h): ACMP best 43.3 with r=4", paper_value=43.3,
        measured_value=peak("h", 4.0), tolerance=0.01,
    ))
    report.add_comparison(PaperComparison(
        claim="5(d): r=4 beats r=1 (capable small cores win at high overhead)",
        paper_value="r=4 > r=1",
        measured_value=f"{peak('d', 4.0):.1f} vs {peak('d', 1.0):.1f}",
        qualitative=True, claim_holds=peak("d", 4.0) > peak("d", 1.0),
    ))
    # low-overhead panels: r=1 wins (maximise core count)
    low_panels = [p for p, _, _, red in PANEL_ORDER if red == "low"]
    r1_wins = all(
        peak(p, 1.0) >= max(peak(p, 4.0), peak(p, 16.0)) for p in low_panels
    )
    report.add_comparison(PaperComparison(
        claim="low overhead: many small cores + one large core is optimal",
        paper_value="r=1 max in (a)(b)(e)(f)",
        measured_value=str(r1_wins), qualitative=True, claim_holds=r1_wins,
    ))
    report.raw["curves"] = curves
    return report


SPEC = ExperimentSpec(
    "fig5", run, stages=(Stage("model-eval-grid", declare_units),)
)
