"""Figs 1 and 6 — the serial-fraction decomposition diagrams.

These paper figures are illustrative (no measured data): Fig 1 splits the
serial fraction into fcon / fred = fcred + fored; Fig 6 further splits the
reduction into computation and communication halves (Section V.E).  The
drivers render the decomposition *with concrete numbers* for a chosen
parameter set, so the diagrams double as a numeric cross-check that the
shares sum correctly.
"""

from __future__ import annotations

from repro.core.params import AppParams
from repro.experiments.report import ExperimentReport, PaperComparison
from repro.util.tables import TextTable
from repro.pipeline import ExperimentSpec

__all__ = ["run_fig1", "run_fig6", "SPECS"]


def _default_params() -> AppParams:
    return AppParams(f=0.99, fcon_share=0.60, fored_share=0.80, name="example")


def run_fig1(params: "AppParams | None" = None) -> ExperimentReport:
    """Fig 1: serial-section split-up, with concrete values."""
    p = params or _default_params()
    report = ExperimentReport("fig1", "Serial section split-up (Fig 1)")
    tree = "\n".join([
        f"execution time (1.0)",
        f"├── parallel fraction f           = {p.f:.6f}",
        f"└── serial fraction s             = {p.serial:.6f}",
        f"    ├── constant serial fcon      = {p.fcon:.6f}  ({p.fcon_share:.0%} of s)",
        f"    └── reduction fred            = {p.fred:.6f}  ({1 - p.fcon_share:.0%} of s)",
        f"        ├── constant fcred        = {p.fcred:.6f}",
        f"        └── growing fored         = {p.fored:.6f}  (x grow(nc) at scale)",
    ])
    t = TextTable(title=tree, columns=["component", "fraction"])
    for name, val in (
        ("f", p.f), ("s", p.serial), ("fcon", p.fcon),
        ("fred", p.fred), ("fcred", p.fcred), ("fored", p.fored),
    ):
        t.add_row([name, val])
    report.add_table(t)
    report.add_comparison(PaperComparison(
        claim="decomposition sums: f + fcon + fcred + fored = 1",
        paper_value=1.0,
        measured_value=p.f + p.fcon + p.fcred + p.fored,
        tolerance=1e-12,
    ))
    report.raw["params"] = p
    return report


def run_fig6(params: "AppParams | None" = None) -> ExperimentReport:
    """Fig 6: reduction-fraction split-up into computation/communication."""
    p = params or _default_params()
    report = ExperimentReport(
        "fig6", "Reduction fraction split-up (Fig 6, Section V.E)"
    )
    tree = "\n".join([
        f"reduction fraction fred           = {p.fred:.6f}",
        f"├── computation fcomp             = {p.fcomp:.6f}  (x (1 + growcomp(nc))/perf)",
        f"└── communication fcomm           = {p.fcomm:.6f}  (x (1 + growcomm(nc)))",
    ])
    t = TextTable(title=tree, columns=["component", "fraction"])
    for name, val in (("fred", p.fred), ("fcomp", p.fcomp), ("fcomm", p.fcomm)):
        t.add_row([name, val])
    report.add_table(t)
    report.add_comparison(PaperComparison(
        claim="ideal premise: fcomp == fcomm and fcomp + fcomm == fred",
        paper_value="equal halves",
        measured_value=f"{p.fcomp:.6f} / {p.fcomm:.6f}",
        qualitative=True,
        claim_holds=abs(p.fcomp - p.fcomm) < 1e-15
        and abs(p.fcomp + p.fcomm - p.fred) < 1e-15,
    ))
    report.raw["params"] = p
    return report


SPECS = (
    ExperimentSpec("fig1", run_fig1),
    ExperimentSpec("fig6", run_fig6),
)
