"""Experiment registry: id → driver."""

from __future__ import annotations

from typing import Callable, Mapping

from repro.experiments import ablations, conclusions, extensions, falsesharing
from repro.experiments import locked_reduction, mix_study
from repro.experiments import fig1_fig6, fig2, fig3, fig4, fig5, fig7
from repro.experiments import table1, table2, table3, table4
from repro.experiments.report import ExperimentReport

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

EXPERIMENTS: Mapping[str, Callable[..., ExperimentReport]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "fig1": fig1_fig6.run_fig1,
    "fig6": fig1_fig6.run_fig6,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig7": fig7.run,
    "ablations": ablations.run,
    "ablation-perf": ablations.run_perf_law,
    "ablation-topology": ablations.run_topology,
    "ablation-reduction": ablations.run_reduction_strategy,
    "ablation-rmap": ablations.run_optimal_r_map,
    "ablation-machine": ablations.run_machine_model,
    "ext-critical": extensions.run_critical,
    "ext-energy": extensions.run_energy,
    "ext-scaled": extensions.run_scaled,
    "ext-contention": extensions.run_contention,
    "ext-acmp-sim": extensions.run_acmp_sim,
    "ext-crossover-sim": extensions.run_crossover_sim,
    "ext-falsesharing": falsesharing.run,
    "ext-locked-reduction": locked_reduction.run,
    "ext-mix": mix_study.run,
    "conclusions": conclusions.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentReport]:
    """Look up a driver by id; raises with the list of known ids."""
    if experiment_id not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, **options) -> ExperimentReport:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(**options)
