"""Experiment registry: id → :class:`~repro.pipeline.ExperimentSpec`.

Every experiment module exports its spec(s) — ``SPEC`` for a single
experiment, ``SPECS`` for a family — and this module collects them into
one table.  The classic driver map (``EXPERIMENTS``) and the engine's
sweep-declaration map (``SWEEP_DECLARATIONS``) are both *derived* from
the specs, so adding an experiment is one ``ExperimentSpec`` in its own
module and nothing else.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Mapping

from repro import obs
from repro.experiments import ablations, conclusions, extensions, falsesharing
from repro.experiments import locked_reduction, mix_study, scheduler_study
from repro.experiments import fig1_fig6, fig2, fig3, fig4, fig5, fig7
from repro.experiments import table1, table2, table3, table4
from repro.experiments.report import ExperimentReport
from repro.pipeline import ExperimentSpec, accepted_options, filter_kwargs

__all__ = [
    "SPECS",
    "EXPERIMENTS",
    "SWEEP_DECLARATIONS",
    "get_spec",
    "get_experiment",
    "run_experiment",
    "validate_options",
    "filter_options",
    "describe_experiment",
    "declare_units",
]

#: the paper-order module list the registry collects specs from
_MODULES = (
    table1, table2, table3, table4,
    fig1_fig6, fig2, fig3, fig4, fig5, fig7,
    ablations, extensions, falsesharing, locked_reduction, mix_study,
    scheduler_study, conclusions,
)


def _collect_specs() -> "dict[str, ExperimentSpec]":
    specs: "dict[str, ExperimentSpec]" = {}
    for module in _MODULES:
        found = getattr(module, "SPECS", None)
        if found is None:
            found = (module.SPEC,)
        for spec in found:
            if spec.experiment_id in specs:  # pragma: no cover - import-time guard
                raise ValueError(f"duplicate experiment id {spec.experiment_id!r}")
            specs[spec.experiment_id] = spec
    return specs


SPECS: Mapping[str, ExperimentSpec] = _collect_specs()

#: id → assemble function (the classic driver map, derived from SPECS)
EXPERIMENTS: Mapping[str, Callable[..., ExperimentReport]] = {
    eid: spec.assemble for eid, spec in SPECS.items()
}

#: id → declarer returning the experiment's expensive work as engine
#: :class:`~repro.engine.units.WorkUnit`\ s (same defaults and cache keys
#: as the driver's own calls).  Derived from SPECS: experiments without
#: stages have nothing worth precomputing — they are pure model
#: evaluations or derive everything from another experiment's sweep.
SWEEP_DECLARATIONS: Mapping[str, Callable[..., list]] = {
    eid: spec.declare_units for eid, spec in SPECS.items() if spec.declares_units
}


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up a spec by id; raises with the list of known ids."""
    if experiment_id not in SPECS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(sorted(SPECS))}"
        )
    return SPECS[experiment_id]


def get_experiment(experiment_id: str) -> Callable[..., ExperimentReport]:
    """Look up a driver by id; raises with the list of known ids."""
    return get_spec(experiment_id).assemble


def validate_options(experiment_id: str, options: Mapping[str, object]) -> None:
    """Raise ``TypeError`` naming any option the driver does not accept.

    Drivers take different knobs (``scale`` means nothing to ``fig4``),
    so blind ``**options`` forwarding would surface as an unhelpful
    low-level ``TypeError`` from the driver call; this checks the
    driver's signature up front and names the offender and the accepted
    set instead.
    """
    accepted = accepted_options(get_experiment(experiment_id))
    if accepted is None:
        return
    unknown = sorted(set(options) - accepted)
    if unknown:
        raise TypeError(
            f"experiment {experiment_id!r} got unknown option(s) "
            f"{', '.join(repr(o) for o in unknown)}; accepted: "
            f"{', '.join(sorted(accepted)) or '(none)'}"
        )


def filter_options(experiment_id: str,
                   options: Mapping[str, object]) -> dict:
    """The subset of ``options`` the experiment's driver accepts.

    The forgiving counterpart of :func:`validate_options`, for callers
    that apply one option set across many experiments (``repro runall
    --scale 0.1``, resume manifests): each driver receives only the
    knobs it understands.  Drivers taking ``**kwargs`` accept all.
    """
    return filter_kwargs(get_experiment(experiment_id), options)


_EXPERIMENT_SECONDS = obs.histogram(
    "experiment_seconds", "wall-clock seconds per experiment driver",
    labels=("experiment",),
)


def run_experiment(experiment_id: str, **options) -> ExperimentReport:
    """Run one experiment by id (options validated against the driver)."""
    spec = get_spec(experiment_id)
    validate_options(experiment_id, options)
    if not obs.enabled():
        return spec.run(**options)
    t0 = time.perf_counter()
    with obs.span("experiment.run", experiment=experiment_id):
        report = spec.run(**options)
    _EXPERIMENT_SECONDS.observe(time.perf_counter() - t0, experiment=experiment_id)
    return report


def describe_experiment(experiment_id: str) -> str:
    """One-line description of an experiment (its driver's docstring)."""
    doc = inspect.getdoc(get_experiment(experiment_id))
    return doc.splitlines()[0].strip() if doc else ""


def declare_units(experiment_id: str, **options) -> list:
    """The experiment's declared work as units (``[]`` if none).

    Options a stage does not understand are dropped rather than
    rejected: callers pass one option set for a whole batch of
    experiments (e.g. ``repro runall --scale 0.1``) and each stage
    picks out what applies to it.
    """
    return get_spec(experiment_id).declare_units(**options)
