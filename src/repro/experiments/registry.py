"""Experiment registry: id → driver, plus option validation, one-line
descriptions, and the sweep declarations the parallel engine precomputes."""

from __future__ import annotations

import inspect
import time
from typing import Callable, Mapping

from repro import obs
from repro.experiments import ablations, conclusions, extensions, falsesharing
from repro.experiments import locked_reduction, mix_study
from repro.experiments import fig1_fig6, fig2, fig3, fig4, fig5, fig7
from repro.experiments import table1, table2, table3, table4
from repro.experiments.report import ExperimentReport

__all__ = [
    "EXPERIMENTS",
    "SWEEP_DECLARATIONS",
    "get_experiment",
    "run_experiment",
    "validate_options",
    "filter_options",
    "describe_experiment",
    "declare_units",
]

EXPERIMENTS: Mapping[str, Callable[..., ExperimentReport]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "fig1": fig1_fig6.run_fig1,
    "fig6": fig1_fig6.run_fig6,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig7": fig7.run,
    "ablations": ablations.run,
    "ablation-perf": ablations.run_perf_law,
    "ablation-topology": ablations.run_topology,
    "ablation-reduction": ablations.run_reduction_strategy,
    "ablation-rmap": ablations.run_optimal_r_map,
    "ablation-machine": ablations.run_machine_model,
    "ext-critical": extensions.run_critical,
    "ext-energy": extensions.run_energy,
    "ext-scaled": extensions.run_scaled,
    "ext-contention": extensions.run_contention,
    "ext-acmp-sim": extensions.run_acmp_sim,
    "ext-crossover-sim": extensions.run_crossover_sim,
    "ext-falsesharing": falsesharing.run,
    "ext-locked-reduction": locked_reduction.run,
    "ext-mix": mix_study.run,
    "conclusions": conclusions.run,
}

#: id → declarer returning the experiment's simulator sweep as engine
#: :class:`~repro.engine.units.WorkUnit`\ s (same defaults and cache keys
#: as the driver's own ``simulate_breakdowns`` calls).  Experiments
#: without an entry have nothing worth precomputing — they are either
#: pure model evaluations or derive everything from another's sweep.
SWEEP_DECLARATIONS: Mapping[str, Callable[..., list]] = {
    "table2": table2.declare_units,
    "fig2": fig2.declare_units,
    "table4": table4.declare_units,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentReport]:
    """Look up a driver by id; raises with the list of known ids."""
    if experiment_id not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[experiment_id]


def _accepted_options(fn: Callable) -> "set[str] | None":
    """Keyword names ``fn`` accepts, or None when it takes ``**kwargs``."""
    params = inspect.signature(fn).parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return None
    return {
        p.name
        for p in params
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                      inspect.Parameter.KEYWORD_ONLY)
    }


def validate_options(experiment_id: str, options: Mapping[str, object]) -> None:
    """Raise ``TypeError`` naming any option the driver does not accept.

    Drivers take different knobs (``scale`` means nothing to ``fig4``),
    so blind ``**options`` forwarding would surface as an unhelpful
    low-level ``TypeError`` from the driver call; this checks the
    driver's signature up front and names the offender and the accepted
    set instead.
    """
    accepted = _accepted_options(get_experiment(experiment_id))
    if accepted is None:
        return
    unknown = sorted(set(options) - accepted)
    if unknown:
        raise TypeError(
            f"experiment {experiment_id!r} got unknown option(s) "
            f"{', '.join(repr(o) for o in unknown)}; accepted: "
            f"{', '.join(sorted(accepted)) or '(none)'}"
        )


def filter_options(experiment_id: str,
                   options: Mapping[str, object]) -> dict:
    """The subset of ``options`` the experiment's driver accepts.

    The forgiving counterpart of :func:`validate_options`, for callers
    that apply one option set across many experiments (``repro runall
    --scale 0.1``, resume manifests): each driver receives only the
    knobs it understands.  Drivers taking ``**kwargs`` accept all.
    """
    accepted = _accepted_options(get_experiment(experiment_id))
    if accepted is None:
        return dict(options)
    return {k: v for k, v in options.items() if k in accepted}


_EXPERIMENT_SECONDS = obs.histogram(
    "experiment_seconds", "wall-clock seconds per experiment driver",
    labels=("experiment",),
)


def run_experiment(experiment_id: str, **options) -> ExperimentReport:
    """Run one experiment by id (options validated against the driver)."""
    driver = get_experiment(experiment_id)
    validate_options(experiment_id, options)
    if not obs.enabled():
        return driver(**options)
    t0 = time.perf_counter()
    with obs.span("experiment.run", experiment=experiment_id):
        report = driver(**options)
    _EXPERIMENT_SECONDS.observe(time.perf_counter() - t0, experiment=experiment_id)
    return report


def describe_experiment(experiment_id: str) -> str:
    """One-line description of an experiment (its driver's docstring)."""
    doc = inspect.getdoc(get_experiment(experiment_id))
    return doc.splitlines()[0].strip() if doc else ""


def declare_units(experiment_id: str, **options) -> list:
    """The experiment's declared sweep as work units (``[]`` if none).

    Options the declarer does not understand are dropped rather than
    rejected: callers pass one option set for a whole batch of
    experiments (e.g. ``repro runall --scale 0.1``) and each declarer
    picks out what applies to it.
    """
    declarer = SWEEP_DECLARATIONS.get(experiment_id)
    if declarer is None:
        return []
    accepted = _accepted_options(declarer)
    if accepted is not None:
        options = {k: v for k, v in options.items() if k in accepted}
    return declarer(**options)
