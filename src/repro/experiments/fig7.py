"""Fig 7 — communication-aware scalability (two panels).

Plots Eqs 6 and 7 (parallel reduction on a 2D mesh, growcomm = sqrt(nc)/2)
for the non-embarrassingly-parallel, moderate-constant Table III class, and
checks the three findings of Section V.E: lower peaks than Amdahl, a shift
toward fewer larger cores, and a diminished ACMP advantage.
"""

from __future__ import annotations

import numpy as np

from repro.core import communication as comm
from repro.core import hill_marty
from repro.core.params import AppParams
from repro.experiments.report import ExperimentReport, PaperComparison, series_table
from repro.pipeline import ExperimentSpec

__all__ = ["run", "SPEC"]

_R_CHOICES = (1.0, 4.0, 16.0)


def run(n: int = 256) -> ExperimentReport:
    """Regenerate Fig 7(a) and (b)."""
    report = ExperimentReport("fig7", "Scalability with communication overhead")
    params = AppParams(
        f=0.99, fcon_share=0.60, fored_share=0.80, name="non-emb/moderate"
    )

    # (a) symmetric
    sizes, sym = comm.sweep_symmetric_comm(params, n)
    report.add_table(series_table(
        "Fig 7(a) — symmetric CMPs (mesh, parallel reduction)",
        "r (BCEs/core)", [int(s) for s in sizes], {"speedup": sym},
    ))
    i = int(np.argmax(sym))
    report.add_comparison(PaperComparison(
        claim="7(a): peak speedup 46.6", paper_value=46.6,
        measured_value=float(sym[i]), tolerance=0.005,
    ))
    report.add_comparison(PaperComparison(
        claim="7(a): peak at r=8", paper_value=8.0,
        measured_value=float(sizes[i]), tolerance=0.01,
    ))
    _, hm_sym = hill_marty.best_symmetric(params.f, n)
    report.add_comparison(PaperComparison(
        claim="7(a): below Amdahl's 79.7", paper_value="46.6 < 79.7",
        measured_value=f"{float(sym[i]):.1f} < {hm_sym:.1f}",
        qualitative=True, claim_holds=float(sym[i]) < hm_sym,
    ))

    # (b) asymmetric
    series = {}
    peaks = {}
    x_axis = None
    for r in _R_CHOICES:
        szs, sp = comm.sweep_asymmetric_comm(params, n, r=r)
        peaks[r] = float(sp.max())
        if x_axis is None or len(szs) > len(x_axis):
            x_axis = szs
        padded = np.full(len(comm.sweep_asymmetric_comm(params, n, r=1.0)[0]), np.nan)
        padded[len(padded) - len(sp):] = sp
        series[f"r={int(r)}"] = padded
    report.add_table(series_table(
        "Fig 7(b) — asymmetric CMPs (mesh, parallel reduction)",
        "rl (BCEs, large core)",
        [int(s) for s in comm.sweep_asymmetric_comm(params, n, r=1.0)[0]],
        series,
    ))
    best_asym = max(peaks.values())
    report.add_comparison(PaperComparison(
        claim="7(b): peak speedup 51.6", paper_value=51.6,
        measured_value=best_asym, tolerance=0.005,
    ))
    report.add_comparison(PaperComparison(
        claim="7(b): r=4 slightly beats r=1", paper_value="r=4 > r=1, small margin",
        measured_value=f"{peaks[4.0]:.1f} vs {peaks[1.0]:.1f}",
        qualitative=True,
        claim_holds=peaks[4.0] > peaks[1.0] and peaks[4.0] / peaks[1.0] < 1.2,
    ))
    report.add_comparison(PaperComparison(
        claim="ACMP advantage diminished under communication",
        paper_value="51.6/46.6 ~ 1.11 (Amdahl: 162.3/79.7 ~ 2.0)",
        measured_value=f"{best_asym / float(sym[i]):.2f}",
        qualitative=True,
        claim_holds=best_asym / float(sym[i]) < 1.3,
    ))
    report.raw.update(symmetric=(sizes, sym), asymmetric_peaks=peaks)
    return report


SPEC = ExperimentSpec("fig7", run)
