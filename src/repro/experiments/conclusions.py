"""The paper's three conclusions, verified across the whole design space.

Section VII states:

(a) Amdahl's Law can overestimate the scalability offered by symmetric and
    asymmetric architectures for applications with merging phases;
(b) there is a shift towards using the chip area for fewer and hence more
    capable cores rather than simply increasing the number of cores;
(c) the performance potential of asymmetric over symmetric CMPs is limited
    for such applications.

Each conclusion is checked not at a single point but across a dense grid
over (f, fcon_share, fored_share), so the report quantifies *how robust*
the conclusions are, not merely that one configuration exhibits them.
"""

from __future__ import annotations

import numpy as np

from repro.core import gridkernels, hill_marty, merging, optimizer
from repro.core.params import AppParams
from repro.experiments.report import ExperimentReport, PaperComparison
from repro.pipeline import ExperimentSpec, Stage, model_eval_grid_unit, resolve_units
from repro.util.tables import TextTable

__all__ = ["run", "declare_units", "evaluate_point", "evaluate_grid", "SPEC"]


def _grid():
    for f in (0.999, 0.99, 0.95):
        for con in (0.9, 0.75, 0.6, 0.45):
            for ored in (0.1, 0.3, 0.5, 0.8):
                yield AppParams(f=f, fcon_share=con, fored_share=ored)


def evaluate_point(f: float, fcon_share: float, fored_share: float, n: int) -> dict:
    """All three conclusions' metrics at one grid point (the expensive
    part of the sweep: three optimizations over every design of n BCEs)."""
    p = AppParams(f=f, fcon_share=fcon_share, fored_share=fored_share)
    hm_r, hm_sp = hill_marty.best_symmetric(p.f, n)
    ours = merging.best_symmetric(p, n)
    cmp_ = optimizer.compare_architectures(p, n)
    return {
        "hm_r": float(hm_r),
        "hm_speedup": float(hm_sp),
        "ours_r": float(ours.r),
        "ours_speedup": float(ours.speedup),
        "acmp_ratio": float(cmp_.acmp_speedup_ratio),
        "amdahl_ratio": float(cmp_.amdahl_speedup_ratio),
    }


def evaluate_grid(f: list, fcon_share: list, fored_share: list, n: int) -> dict:
    """All grid points' conclusion metrics in one vectorized call.

    Takes parallel per-point parameter lists and returns the same metric
    names as :func:`evaluate_point`, each as a parallel list.  Values are
    bit-identical to the per-point path (the :mod:`repro.core.gridkernels`
    contract), so reports assembled from either are byte-equal.
    """
    import numpy as np

    return gridkernels.conclusions_grid(
        np.asarray(f, dtype=np.float64),
        np.asarray(fcon_share, dtype=np.float64),
        np.asarray(fored_share, dtype=np.float64),
        n,
    )


def declare_units(n: int = 256) -> list:
    """One model-eval-grid unit for the whole 48-point sweep."""
    points = list(_grid())
    return [
        model_eval_grid_unit(
            evaluate_grid,
            {"f": [p.f for p in points],
             "fcon_share": [p.fcon_share for p in points],
             "fored_share": [p.fored_share for p in points],
             "n": n},
            label=f"conclusions-grid@{len(points)}pts,n={n}",
        )
    ]


def run(n: int = 256) -> ExperimentReport:
    """Sweep the conclusions over a 48-point parameter grid."""
    report = ExperimentReport(
        "conclusions", "The paper's three conclusions across the design space"
    )
    overestimates = 0
    shift_violations = []
    advantage_ratios = []
    rows = []
    points = list(_grid())
    [unit] = declare_units(n)
    grid = resolve_units([unit])[unit.key]
    for i, p in enumerate(points):
        m = {k: grid[k][i] for k in grid}
        if m["hm_speedup"] > m["ours_speedup"] + 1e-9:
            overestimates += 1
        if m["ours_r"] < m["hm_r"]:
            shift_violations.append(p)
        advantage_ratios.append(
            (p.fored_share, m["acmp_ratio"], m["amdahl_ratio"])
        )
        rows.append((p, m))

    # (a) Amdahl overestimates everywhere on the grid
    report.add_comparison(PaperComparison(
        claim="(a) Amdahl overestimates speedup for merging-phase apps",
        paper_value="always",
        measured_value=f"{overestimates}/{len(points)} grid points",
        qualitative=True, claim_holds=overestimates == len(points),
    ))
    # (b) the optimum never uses smaller cores than Hill–Marty's
    report.add_comparison(PaperComparison(
        claim="(b) merging shifts optima to fewer, more capable cores",
        paper_value="optimal r >= Hill-Marty's r",
        measured_value=f"{len(points) - len(shift_violations)}/{len(points)} grid points",
        qualitative=True, claim_holds=not shift_violations,
    ))
    # (c) the ACMP advantage shrinks as overhead grows, and sits far below
    # the constant-serial prediction at high overhead
    by_overhead: dict[float, list[float]] = {}
    amdahl_by_overhead: dict[float, list[float]] = {}
    for ored, ratio, amdahl_ratio in advantage_ratios:
        by_overhead.setdefault(ored, []).append(ratio)
        amdahl_by_overhead.setdefault(ored, []).append(amdahl_ratio)
    means = {o: float(np.mean(v)) for o, v in sorted(by_overhead.items())}
    amdahl_means = {o: float(np.mean(v)) for o, v in sorted(amdahl_by_overhead.items())}
    monotone_down = all(
        means[a] >= means[b] - 1e-9
        for a, b in zip(sorted(means), sorted(means)[1:])
    )
    report.add_comparison(PaperComparison(
        claim="(c) mean ACMP advantage decreases with reduction overhead",
        paper_value="monotone down",
        measured_value=" -> ".join(f"{means[o]:.2f}" for o in sorted(means)),
        qualitative=True, claim_holds=monotone_down,
    ))
    report.add_comparison(PaperComparison(
        claim="(c) at high overhead the ACMP advantage is far below Amdahl's promise",
        paper_value="e.g. 1.2x vs 2.0x at fored=80%",
        measured_value=(
            f"{means[0.8]:.2f}x vs Amdahl {amdahl_means[0.8]:.2f}x"
        ),
        qualitative=True,
        claim_holds=means[0.8] < 0.75 * amdahl_means[0.8],
    ))

    t = TextTable(
        title="conclusion metrics by overhead share (grid means)",
        columns=["fored", "mean ACMP advantage (ours)", "mean ACMP advantage (Amdahl)"],
    )
    for o in sorted(means):
        t.add_row([f"{o:.0%}", round(means[o], 3), round(amdahl_means[o], 3)])
    report.add_table(t)
    report.raw.update(rows=rows, means=means, amdahl_means=amdahl_means)
    return report


SPEC = ExperimentSpec(
    "conclusions", run, stages=(Stage("model-eval", declare_units),)
)
