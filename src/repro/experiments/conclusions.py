"""The paper's three conclusions, verified across the whole design space.

Section VII states:

(a) Amdahl's Law can overestimate the scalability offered by symmetric and
    asymmetric architectures for applications with merging phases;
(b) there is a shift towards using the chip area for fewer and hence more
    capable cores rather than simply increasing the number of cores;
(c) the performance potential of asymmetric over symmetric CMPs is limited
    for such applications.

Each conclusion is checked not at a single point but across a dense grid
over (f, fcon_share, fored_share), so the report quantifies *how robust*
the conclusions are, not merely that one configuration exhibits them.
"""

from __future__ import annotations

import numpy as np

from repro.core import hill_marty, merging, optimizer
from repro.core.params import AppParams
from repro.experiments.report import ExperimentReport, PaperComparison
from repro.util.tables import TextTable

__all__ = ["run"]


def _grid():
    for f in (0.999, 0.99, 0.95):
        for con in (0.9, 0.75, 0.6, 0.45):
            for ored in (0.1, 0.3, 0.5, 0.8):
                yield AppParams(f=f, fcon_share=con, fored_share=ored)


def run(n: int = 256) -> ExperimentReport:
    """Sweep the conclusions over a 48-point parameter grid."""
    report = ExperimentReport(
        "conclusions", "The paper's three conclusions across the design space"
    )
    overestimates = 0
    shift_violations = []
    advantage_ratios = []
    rows = []
    points = list(_grid())
    for p in points:
        hm_r, hm_sp = hill_marty.best_symmetric(p.f, n)
        ours = merging.best_symmetric(p, n)
        cmp_ = optimizer.compare_architectures(p, n)
        if hm_sp > ours.speedup + 1e-9:
            overestimates += 1
        if ours.r < hm_r:
            shift_violations.append(p)
        advantage_ratios.append(
            (p.fored_share, cmp_.acmp_speedup_ratio, cmp_.amdahl_speedup_ratio)
        )
        rows.append((p, hm_sp, ours, cmp_))

    # (a) Amdahl overestimates everywhere on the grid
    report.add_comparison(PaperComparison(
        claim="(a) Amdahl overestimates speedup for merging-phase apps",
        paper_value="always",
        measured_value=f"{overestimates}/{len(points)} grid points",
        qualitative=True, claim_holds=overestimates == len(points),
    ))
    # (b) the optimum never uses smaller cores than Hill–Marty's
    report.add_comparison(PaperComparison(
        claim="(b) merging shifts optima to fewer, more capable cores",
        paper_value="optimal r >= Hill-Marty's r",
        measured_value=f"{len(points) - len(shift_violations)}/{len(points)} grid points",
        qualitative=True, claim_holds=not shift_violations,
    ))
    # (c) the ACMP advantage shrinks as overhead grows, and sits far below
    # the constant-serial prediction at high overhead
    by_overhead: dict[float, list[float]] = {}
    amdahl_by_overhead: dict[float, list[float]] = {}
    for ored, ratio, amdahl_ratio in advantage_ratios:
        by_overhead.setdefault(ored, []).append(ratio)
        amdahl_by_overhead.setdefault(ored, []).append(amdahl_ratio)
    means = {o: float(np.mean(v)) for o, v in sorted(by_overhead.items())}
    amdahl_means = {o: float(np.mean(v)) for o, v in sorted(amdahl_by_overhead.items())}
    monotone_down = all(
        means[a] >= means[b] - 1e-9
        for a, b in zip(sorted(means), sorted(means)[1:])
    )
    report.add_comparison(PaperComparison(
        claim="(c) mean ACMP advantage decreases with reduction overhead",
        paper_value="monotone down",
        measured_value=" -> ".join(f"{means[o]:.2f}" for o in sorted(means)),
        qualitative=True, claim_holds=monotone_down,
    ))
    report.add_comparison(PaperComparison(
        claim="(c) at high overhead the ACMP advantage is far below Amdahl's promise",
        paper_value="e.g. 1.2x vs 2.0x at fored=80%",
        measured_value=(
            f"{means[0.8]:.2f}x vs Amdahl {amdahl_means[0.8]:.2f}x"
        ),
        qualitative=True,
        claim_holds=means[0.8] < 0.75 * amdahl_means[0.8],
    ))

    t = TextTable(
        title="conclusion metrics by overhead share (grid means)",
        columns=["fored", "mean ACMP advantage (ours)", "mean ACMP advantage (Amdahl)"],
    )
    for o in sorted(means):
        t.add_row([f"{o:.0%}", round(means[o], 3), round(amdahl_means[o], 3)])
    report.add_table(t)
    report.raw.update(rows=rows, means=means, amdahl_means=amdahl_means)
    return report
