"""Fig 3 — scalability prediction to 256 cores, Amdahl vs extended model.

Uses the paper's own Table II parameters (so this panel is exactly
reproducible) and, optionally, parameters extracted from our simulator.
Both models assume linear parallel scaling; they differ only in the serial
section's treatment.
"""

from __future__ import annotations

import numpy as np

from repro.core import measured as mm
from repro.core.params import TABLE2
from repro.experiments.report import ExperimentReport, PaperComparison, series_table
from repro.pipeline import ExperimentSpec

__all__ = ["run", "SPEC"]


def run(max_cores: int = 256) -> ExperimentReport:
    """Regenerate the three panels of Fig 3 (kmeans, fuzzy, hop)."""
    report = ExperimentReport(
        "fig3", "Scalability prediction with and without reduction overhead"
    )
    cores = np.array([1, 2, 4, 8, 16, 32, 64, 128, 256], dtype=np.float64)
    cores = cores[cores <= max_cores]

    for name, params in TABLE2.items():
        amdahl = np.asarray(mm.speedup_amdahl(params, cores))
        extended = np.asarray(mm.speedup_extended(params, cores))
        report.add_table(series_table(
            f"Fig 3({'abc'[list(TABLE2).index(name)]}) — {name}",
            "cores", [int(c) for c in cores],
            {"Amdahl (constant serial)": amdahl, "Extended (reduction overhead)": extended},
        ))
        # the paper's qualitative claims per panel
        report.add_comparison(PaperComparison(
            claim=f"{name}: Amdahl predicts near-linear scaling to 256",
            paper_value="linear to >= 256",
            measured_value=f"{amdahl[-1]:.0f} at 256",
            qualitative=True,
            claim_holds=amdahl[-1] > 0.7 * cores[-1],
        ))
        peak_p, peak_sp = mm.peak_core_count(params, max_cores=4096)
        report.add_comparison(PaperComparison(
            claim=f"{name}: extended model tapers off at fewer cores",
            paper_value="peaks below Amdahl",
            measured_value=f"peak {peak_sp:.0f} at {peak_p} cores",
            qualitative=True,
            claim_holds=extended[-1] < amdahl[-1],
        ))
        report.raw[name] = {
            "cores": cores.tolist(),
            "amdahl": amdahl.tolist(),
            "extended": extended.tolist(),
            "peak": (peak_p, peak_sp),
        }

    report.add_note(
        "parameters from the paper's Table II; 'extended' grows the serial "
        "section as fcred·(1 + fored·(p−1)^alpha) with hop superlinear."
    )
    return report


SPEC = ExperimentSpec("fig3", run)
