"""Locked shared accumulation vs privatised partials + merge.

MineBench's clustering codes privatise their partial results and merge
them in a separate phase — the very phase the paper studies.  The naive
alternative is a single shared accumulator behind a lock.  This experiment
builds both implementations as traces and runs them on the simulator:

* **locked** — every update enters a critical section around the shared
  accumulator (the Eyerman–Eeckhout serialization regime);
* **privatised** — updates hit thread-local buffers; the master merges
  one partial per thread afterwards (Algorithm 1, the paper's regime).

The locked version serialises the *entire* update stream; the privatised
version serialises only the merge, which is x·p work instead of N.  The
measured gap is the quantitative justification for the merging-phase
pattern — and hence for the paper's whole problem setting.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport, PaperComparison
from repro.pipeline import ExperimentSpec, Stage, resolve_units, sim_program_unit
from repro.simx import (
    Compute,
    Load,
    Lock,
    MachineConfig,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
    Unlock,
)
from repro.util.tables import TextTable

__all__ = ["run", "declare_units", "SPEC"]

_LINE = 64
_SHARED = 0x3000_0000
_PRIVATE = 0x2000_0000


def _locked_program(n_threads: int, updates_per_thread: int, batch: int) -> TraceProgram:
    """Shared accumulator behind one lock, updated in batches."""
    threads = []
    for tid in range(n_threads):
        ops = [PhaseBegin("parallel")]
        done = 0
        while done < updates_per_thread:
            chunk = min(batch, updates_per_thread - done)
            ops.append(Compute(chunk * 12))      # produce the contributions
            ops.append(Lock(0))
            for i in range(max(1, chunk // 8)):  # line-granular updates
                ops.append(Load(_SHARED + (i % 16) * _LINE))
                ops.append(Store(_SHARED + (i % 16) * _LINE))
            ops.append(Compute(chunk * 2))       # apply inside the CS
            ops.append(Unlock(0))
            done += chunk
        ops.append(PhaseEnd("parallel"))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("locked", threads)


def _privatised_program(
    n_threads: int, updates_per_thread: int, merge_elements: int
) -> TraceProgram:
    """Thread-local buffers plus a master merge (Algorithm 1)."""
    from repro.simx import Barrier

    threads = []
    merge_lines = max(1, merge_elements // 8)
    for tid in range(n_threads):
        own = _PRIVATE + tid * 0x1_0000
        ops = [PhaseBegin("parallel"), Compute(updates_per_thread * 12)]
        for i in range(max(1, updates_per_thread // 8)):
            ops.append(Store(own + (i % merge_lines) * _LINE))
        ops.append(Compute(updates_per_thread * 2))
        ops.append(PhaseEnd("parallel"))
        if n_threads > 1:
            ops.append(Barrier(0))
        if tid == 0:
            ops.append(PhaseBegin("reduction"))
            for src in range(n_threads):
                for i in range(merge_lines):
                    ops.append(Load(_PRIVATE + src * 0x1_0000 + i * _LINE))
                ops.append(Compute(merge_elements * 2))
            ops.append(PhaseEnd("reduction"))
        if n_threads > 1:
            ops.append(Barrier(1))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("privatised", threads)


def declare_units(
    n_threads: int = 8,
    updates_per_thread: int = 2000,
    batch: int = 64,
    merge_elements: int = 256,
) -> list:
    """Both disciplines' simulator runs as engine work units."""
    cfg = MachineConfig.baseline(n_cores=max(n_threads, 2))
    return [
        sim_program_unit(
            _locked_program,
            {"n_threads": n_threads, "updates_per_thread": updates_per_thread,
             "batch": batch},
            cfg, label="locked",
        ),
        sim_program_unit(
            _privatised_program,
            {"n_threads": n_threads, "updates_per_thread": updates_per_thread,
             "merge_elements": merge_elements},
            cfg, label="privatised",
        ),
    ]


def run(
    n_threads: int = 8,
    updates_per_thread: int = 2000,
    batch: int = 64,
    merge_elements: int = 256,
) -> ExperimentReport:
    """Compare the two reduction disciplines on the simulator."""
    report = ExperimentReport(
        "ext-locked-reduction", "Locked shared accumulation vs privatise-and-merge"
    )
    units = declare_units(n_threads, updates_per_thread, batch, merge_elements)
    payloads = resolve_units(units)
    locked, privatised = (payloads[u.key] for u in units)
    t = TextTable(
        title=f"{n_threads} threads x {updates_per_thread} updates",
        columns=["discipline", "cycles", "lock waits (cycles)", "merge cycles"],
    )
    locked_wait = locked["parallel_wait_cycles"]
    t.add_row(["locked shared", locked["total_cycles"], locked_wait, 0])
    t.add_row([
        "privatised + merge", privatised["total_cycles"],
        0, privatised["reduction_cycles"],
    ])
    report.add_table(t)
    speedup = locked["total_cycles"] / privatised["total_cycles"]
    report.add_comparison(PaperComparison(
        claim="privatised partials + merge beat the locked accumulator",
        paper_value="the MineBench pattern the paper studies",
        measured_value=f"{speedup:.1f}x faster",
        qualitative=True, claim_holds=speedup > 1.5,
    ))
    report.add_comparison(PaperComparison(
        claim="lock waiting dominates the locked version's parallel phase",
        paper_value="serialised critical sections [Eyerman & Eeckhout]",
        measured_value=f"{locked_wait:,} wait cycles",
        qualitative=True,
        claim_holds=locked_wait > locked["total_cycles"] / 4,
    ))
    report.raw.update(locked=locked, privatised=privatised)
    return report


SPEC = ExperimentSpec(
    "ext-locked-reduction", run, stages=(Stage("sim-program", declare_units),)
)
