"""Fig 4 — scalability on symmetric CMPs (four panels).

Each panel fixes (fcon, fored) and sweeps the per-core area r over
1..256 BCEs for f in {0.999, 0.99} under Linear and Log reduction growth —
exactly the paper's Eq 4 with perf(r) = sqrt(r) and n = 256.
"""

from __future__ import annotations

import numpy as np

from repro.core import gridkernels, merging
from repro.core.growth import LINEAR, LOG
from repro.experiments.report import ExperimentReport, PaperComparison, series_table
from repro.pipeline import ExperimentSpec, Stage, model_eval_grid_unit, resolve_units

__all__ = ["run", "declare_units", "evaluate_curves", "PANELS", "SPEC"]

#: (panel, fcon_share, fored_share) in the paper's order.
PANELS = (
    ("a", 0.90, 0.10),  # high constant, low reduction overhead
    ("b", 0.90, 0.80),  # high constant, high reduction overhead
    ("c", 0.60, 0.10),  # moderate constant, low reduction overhead
    ("d", 0.60, 0.80),  # moderate constant, high reduction overhead
)

#: numeric anchors quoted in the paper's Section V.D.1 text
_ANCHORS = (
    ("c", 0.999, "Linear", 104.5, 4.0),
    ("d", 0.999, "Linear", 67.1, 8.0),
    ("d", 0.99, "Linear", 36.2, 32.0),
    ("b", 0.99, "Linear", 47.6, 16.0),
)

_F_VALUES = (0.999, 0.99)
_GROWTHS = ((LINEAR, "Linear"), (LOG, "Log"))


def evaluate_curves(n: int) -> dict:
    """All sixteen Fig 4 curves in one vectorized grid evaluation per
    growth law (panels x f broadcast against the size axis)."""
    sizes = merging.power_of_two_sizes(n)
    con = np.asarray([c for _, c, _ in PANELS])[:, None, None]
    ored = np.asarray([o for _, _, o in PANELS])[:, None, None]
    f = np.asarray(_F_VALUES)[None, :, None]
    curves = {}
    for growth, glabel in _GROWTHS:
        sp = gridkernels.merging_symmetric(f, con, ored, n, sizes, growth)
        for i, (panel, _, _) in enumerate(PANELS):
            for j, fv in enumerate(_F_VALUES):
                curves[f"{panel}|{fv}|{glabel}"] = sp[i, j]
    return {"sizes": sizes, "curves": curves}


def declare_units(n: int = 256) -> list:
    """The whole figure's model evaluation as one grid unit."""
    return [model_eval_grid_unit(evaluate_curves, {"n": n},
                                 label=f"fig4-grid@n={n}")]


def run(n: int = 256) -> ExperimentReport:
    """Regenerate all four Fig 4 panels."""
    report = ExperimentReport("fig4", "Scalability on symmetric CMPs")
    [unit] = declare_units(n)
    payload = resolve_units([unit])[unit.key]
    sizes = np.asarray(payload["sizes"])
    curves: dict[tuple, np.ndarray] = {}

    for panel, con, ored in PANELS:
        series = {}
        for f in _F_VALUES:
            for _, glabel in _GROWTHS:
                sp = np.asarray(payload["curves"][f"{panel}|{f}|{glabel}"])
                series[f"f={f} {glabel}"] = sp
                curves[(panel, f, glabel)] = sp
        report.add_table(series_table(
            f"Fig 4({panel}) — fcon={int(con * 100)}%, fored={int(ored * 100)}%",
            "r (BCEs/core)", [int(s) for s in sizes], series,
        ))

    for panel, f, glabel, peak_value, peak_r in _ANCHORS:
        sp = curves[(panel, f, glabel)]
        i = int(np.argmax(sp))
        report.add_comparison(PaperComparison(
            claim=f"4({panel}) f={f} {glabel}: peak {peak_value} at r={peak_r:.0f}",
            paper_value=peak_value, measured_value=float(sp[i]), tolerance=0.01,
        ))
        report.add_comparison(PaperComparison(
            claim=f"4({panel}) f={f} {glabel}: peak location r={peak_r:.0f}",
            paper_value=peak_r, measured_value=float(sizes[i]), tolerance=0.01,
        ))

    # qualitative: under Linear growth, r=1 never wins; under Log growth,
    # embarrassingly parallel apps peak at r=1 (Section V.D.1).
    r1_never_best = all(
        sizes[int(np.argmax(curves[(panel, f, "Linear")]))] > 1.0
        for panel, _, _ in PANELS for f in (0.999, 0.99)
    )
    report.add_comparison(PaperComparison(
        claim="Linear growth: 256 small cores never optimal",
        paper_value="r=1 never peaks", measured_value=str(r1_never_best),
        qualitative=True, claim_holds=r1_never_best,
    ))
    emb_log_small_cores = all(
        sizes[int(np.argmax(curves[(panel, 0.999, "Log")]))] == 1.0
        for panel, _, ored in PANELS if ored == 0.10
    )
    report.add_comparison(PaperComparison(
        claim="Log growth, emb. parallel, low overhead: small cores win",
        paper_value="r=1 peaks", measured_value=str(emb_log_small_cores),
        qualitative=True, claim_holds=emb_log_small_cores,
    ))
    report.raw["curves"] = curves
    report.raw["sizes"] = sizes
    return report


SPEC = ExperimentSpec(
    "fig4", run, stages=(Stage("model-eval-grid", declare_units),)
)
