"""Persisting experiment artefacts as JSON.

Two kinds of artefact live here:

* **reports** — structured experiment output (tables, comparisons, notes)
  round-tripping to a stable JSON schema so runs can be archived, diffed
  across code versions, and consumed by external tooling (the CLI's
  ``run --json`` flag); ``raw`` objects (numpy arrays, dataclasses) stay
  in-process;
* **sweep results** — a content-addressed on-disk store
  (:class:`SweepStore`) used by :mod:`repro.experiments.simsweep` as the
  second cache tier, so repeated Table II / Fig 2 sweeps are free across
  CLI invocations.  Keys are SHA-256 hashes of a canonical JSON
  description of everything the result depends on; corrupt or truncated
  entries are treated as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path

from repro import obs
from repro.experiments.report import ExperimentReport, PaperComparison
from repro.util.tables import TextTable

__all__ = [
    "report_to_dict",
    "report_from_dict",
    "save_report",
    "load_report",
    "SweepStore",
]

_SCHEMA_VERSION = 1

_STORE_READS = obs.counter("sweep_store_reads_total",
                           "disk sweep-store reads", labels=("result",))
_STORE_WRITES = obs.counter("sweep_store_writes_total",
                            "disk sweep-store writes", labels=("result",))


def _plain(value):
    """Collapse numpy scalars to the Python scalar they render as.

    Table cells and comparison values may arrive as ``np.float64`` /
    ``np.int64``; ``json.dumps(default=str)`` would stringify those, so a
    loaded report would render ``"5.0"`` where the original rendered
    ``5.0``.  Both str() identically, so the collapse keeps round-trips
    (serialise → deserialise → render) byte-exact.
    """
    if hasattr(value, "item") and not isinstance(value, (str, bytes, bool, int, float)):
        try:
            return value.item()
        except (AttributeError, TypeError, ValueError):
            return value
    return value


def report_to_dict(report: ExperimentReport) -> dict:
    """Serialise a report to plain JSON-compatible data."""
    return {
        "schema": _SCHEMA_VERSION,
        "experiment_id": report.experiment_id,
        "title": report.title,
        "tables": [
            {
                "title": t.title,
                "columns": list(t.columns),
                "rows": [[_plain(c) for c in row] for row in t.rows],
            }
            for t in report.tables
        ],
        "comparisons": [
            {
                "claim": c.claim,
                "paper_value": _plain(c.paper_value),
                "measured_value": _plain(c.measured_value),
                "tolerance": _plain(c.tolerance),
                "qualitative": bool(c.qualitative),
                "claim_holds": None if c.claim_holds is None else bool(c.claim_holds),
                "matches": c.matches(),
            }
            for c in report.comparisons
        ],
        "notes": list(report.notes),
        "all_match": report.all_match,
    }


def report_from_dict(data: dict) -> ExperimentReport:
    """Rebuild a report from its JSON form (raw data is not restored)."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported report schema {data.get('schema')!r}; "
            f"expected {_SCHEMA_VERSION}"
        )
    report = ExperimentReport(data["experiment_id"], data["title"])
    for t in data["tables"]:
        table = TextTable(title=t["title"], columns=t["columns"])
        table.rows = [list(r) for r in t["rows"]]
        report.add_table(table)
    for c in data["comparisons"]:
        report.add_comparison(PaperComparison(
            claim=c["claim"],
            paper_value=c["paper_value"],
            measured_value=c["measured_value"],
            tolerance=c["tolerance"],
            qualitative=c["qualitative"],
            claim_holds=c["claim_holds"],
        ))
    for n in data["notes"]:
        report.add_note(n)
    return report


def save_report(report: ExperimentReport, path: "str | Path") -> Path:
    """Write a report's JSON form to disk; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(report_to_dict(report), indent=2, default=str) + "\n")
    return p


def load_report(path: "str | Path") -> ExperimentReport:
    """Read a report back from disk."""
    return report_from_dict(json.loads(Path(path).read_text()))


#: distinguishes temp files from committed entries and from each other
#: when several threads of one process write concurrently (the pid alone
#: disambiguates processes)
_tmp_counter = itertools.count()


class SweepStore:
    """A content-addressed JSON store: one file per key under ``root``.

    Safe under concurrent writers and readers racing on one directory
    (the engine's worker pools, parallel CLI invocations, several hosts
    on a shared filesystem):

    * the read side is deliberately forgiving — any unreadable,
      unparsable, truncated or key-mismatched entry is a *miss*
      (``None``), because a cache must never turn disk corruption into a
      crashed sweep;
    * writes are atomic (a uniquely-named temp file, then ``os.replace``)
      so a killed process cannot leave a half-written entry where a
      reader would find it, and two racing writers of one key simply
      commit twice — entries are content-addressed, so both bodies are
      identical and last-rename-wins is harmless;
    * a *failed* write (disk full, permissions, a racing ``clear``)
      leaves the store unchanged and reports ``None`` instead of
      raising: losing a cache write never loses a result.
    """

    _STORE_SCHEMA = 1

    def __init__(self, root: "str | Path"):
        self.root = Path(root)

    @staticmethod
    def key_for(description: dict) -> str:
        """Hash a JSON-serialisable description into a store key.

        Canonical form (sorted keys, no whitespace) so logically equal
        descriptions always map to the same key.
        """
        blob = json.dumps(description, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> "dict | None":
        """Payload stored under ``key``, or None (missing or corrupt)."""
        try:
            data = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            _STORE_READS.inc(result="miss")
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != self._STORE_SCHEMA
            or data.get("key") != key
            or "payload" not in data
        ):
            _STORE_READS.inc(result="miss")
            return None
        _STORE_READS.inc(result="hit")
        return data["payload"]

    def put(self, key: str, payload: dict) -> "Path | None":
        """Atomically store ``payload`` under ``key``.

        Returns the committed path, or ``None`` when the write could not
        be completed (best-effort cache semantics; see the class note).
        """
        path = self.path_for(key)
        record = {"schema": self._STORE_SCHEMA, "key": key, "payload": payload}
        tmp = self.root / f"{key}.{os.getpid()}.{next(_tmp_counter)}.tmp"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(record, sort_keys=True) + "\n")
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError):
            # TypeError/ValueError: payload not JSON-serialisable — as much
            # a failed write as a full disk, and must honour the same
            # never-raise contract
            try:
                tmp.unlink()
            except OSError:
                pass
            _STORE_WRITES.inc(result="failed")
            return None
        _STORE_WRITES.inc(result="committed")
        return path

    def clear(self) -> int:
        """Delete every entry (plus any abandoned temp files from killed
        writers); returns how many entries were removed."""
        removed = 0
        if self.root.is_dir():
            for p in self.root.glob("*.json"):
                try:
                    p.unlink()
                    removed += 1
                except OSError:
                    pass
            for p in self.root.glob("*.tmp"):
                try:
                    p.unlink()
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
