"""Persisting experiment reports as JSON.

Reports round-trip to a stable JSON schema so runs can be archived,
diffed across code versions, and consumed by external tooling (the CLI's
``run --json`` flag).  Only the structured content is serialised — tables,
comparisons, notes; ``raw`` objects (numpy arrays, dataclasses) stay
in-process.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.report import ExperimentReport, PaperComparison
from repro.util.tables import TextTable

__all__ = ["report_to_dict", "report_from_dict", "save_report", "load_report"]

_SCHEMA_VERSION = 1


def report_to_dict(report: ExperimentReport) -> dict:
    """Serialise a report to plain JSON-compatible data."""
    return {
        "schema": _SCHEMA_VERSION,
        "experiment_id": report.experiment_id,
        "title": report.title,
        "tables": [
            {"title": t.title, "columns": list(t.columns), "rows": t.rows}
            for t in report.tables
        ],
        "comparisons": [
            {
                "claim": c.claim,
                "paper_value": c.paper_value,
                "measured_value": c.measured_value,
                "tolerance": c.tolerance,
                "qualitative": c.qualitative,
                "claim_holds": c.claim_holds,
                "matches": c.matches(),
            }
            for c in report.comparisons
        ],
        "notes": list(report.notes),
        "all_match": report.all_match,
    }


def report_from_dict(data: dict) -> ExperimentReport:
    """Rebuild a report from its JSON form (raw data is not restored)."""
    if data.get("schema") != _SCHEMA_VERSION:
        raise ValueError(
            f"unsupported report schema {data.get('schema')!r}; "
            f"expected {_SCHEMA_VERSION}"
        )
    report = ExperimentReport(data["experiment_id"], data["title"])
    for t in data["tables"]:
        table = TextTable(title=t["title"], columns=t["columns"])
        table.rows = [list(r) for r in t["rows"]]
        report.add_table(table)
    for c in data["comparisons"]:
        report.add_comparison(PaperComparison(
            claim=c["claim"],
            paper_value=c["paper_value"],
            measured_value=c["measured_value"],
            tolerance=c["tolerance"],
            qualitative=c["qualitative"],
            claim_holds=c["claim_holds"],
        ))
    for n in data["notes"]:
        report.add_note(n)
    return report


def save_report(report: ExperimentReport, path: "str | Path") -> Path:
    """Write a report's JSON form to disk; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(report_to_dict(report), indent=2, default=str) + "\n")
    return p


def load_report(path: "str | Path") -> ExperimentReport:
    """Read a report back from disk."""
    return report_from_dict(json.loads(Path(path).read_text()))
