"""Fig 2 — application characterisation.

Four panels:

* (a) application scalability to 16 cores (simulator);
* (b) serial-section time vs cores, normalised (simulator);
* (c) the same on "real hardware" (the modelled Xeon by default, the
  actual host with ``backend='process'``);
* (d) model accuracy: extended-model-predicted serial time over simulated
  serial time.
"""

from __future__ import annotations

import numpy as np

from repro.core import measured as measured_model
from repro.core.accuracy import evaluate_accuracy
from repro.experiments.report import ExperimentReport, PaperComparison, series_table
from repro.experiments.simsweep import default_workloads, simulate_breakdowns, sweep_units
from repro.pipeline import (
    ExperimentSpec,
    Stage,
    breakdown_from_payload,
    hardware_units,
    resolve_units,
)
from repro.workloads.instrument import (
    extract_parameters,
    serial_growth_curve,
    speedup_curve,
)

__all__ = ["run", "declare_units", "declare_sim_units", "declare_hardware_units", "SPEC"]


def declare_sim_units(
    scale: float = 0.15,
    thread_counts: tuple = (1, 2, 4, 8, 16),
    mem_scale: int = 2,
) -> list:
    """Fig 2's simulator sweep as engine work units — identical to
    Table II's, which is exactly why the engine's global dedup pays off."""
    units = []
    for workload in default_workloads(scale).values():
        units.extend(sweep_units(workload, thread_counts, mem_scale=mem_scale))
    return units


def declare_hardware_units(
    scale: float = 0.15,
    hw_thread_counts: tuple = (1, 2, 4, 8),
    hardware_backend: str = "model",
) -> list:
    """Panel (c)'s hardware executions as engine work units (the
    ``process`` backend's wall-clock runs are declared non-cacheable)."""
    units = []
    for workload in default_workloads(scale).values():
        units.extend(hardware_units(workload, hw_thread_counts,
                                    backend=hardware_backend))
    return units


def declare_units(**options) -> list:
    """Every unit Fig 2 needs (simulator sweep + hardware runs)."""
    return SPEC.declare_units(**options)


def run(
    scale: float = 0.15,
    thread_counts: tuple = (1, 2, 4, 8, 16),
    hw_thread_counts: tuple = (1, 2, 4, 8),
    mem_scale: int = 2,
    hardware_backend: str = "model",
) -> ExperimentReport:
    """Regenerate all four panels of Fig 2."""
    report = ExperimentReport("fig2", "Application characterisation")
    workloads = default_workloads(scale)

    sim = {
        name: simulate_breakdowns(w, thread_counts, mem_scale=mem_scale)
        for name, w in workloads.items()
    }

    # ── (a) scalability ───────────────────────────────────────────────────
    speedups = {name: speedup_curve(b) for name, b in sim.items()}
    report.add_table(series_table(
        "Fig 2(a) — application scalability (speedup vs cores)",
        "cores", list(thread_counts),
        {name: [curve[p] for p in thread_counts] for name, curve in speedups.items()},
    ))
    for name in ("kmeans", "fuzzy"):
        report.add_comparison(PaperComparison(
            claim=f"2(a): {name} scales near-linearly to 16 cores",
            paper_value="speedup close to 16",
            measured_value=f"{speedups[name][16]:.1f}",
            qualitative=True, claim_holds=speedups[name][16] > 11.0,
        ))
    report.add_comparison(PaperComparison(
        claim="2(a): hop scales worse than kmeans/fuzzy",
        paper_value="~13.5 vs ~16",
        measured_value=f"{speedups['hop'][16]:.1f} vs {speedups['kmeans'][16]:.1f}",
        qualitative=True,
        claim_holds=speedups["hop"][16] < min(speedups["kmeans"][16], speedups["fuzzy"][16]),
    ))

    # ── (b) serial-section growth (simulated) ─────────────────────────────
    growth = {name: serial_growth_curve(b) for name, b in sim.items()}
    report.add_table(series_table(
        "Fig 2(b) — serial section time, normalised to 1 core (simulated)",
        "cores", list(thread_counts),
        {name: [curve[p] for p in thread_counts] for name, curve in growth.items()},
    ))
    for name, curve in growth.items():
        report.add_comparison(PaperComparison(
            claim=f"2(b): {name} serial section grows significantly by 16 cores",
            paper_value="grows with cores",
            measured_value=f"{curve[16]:.2f}x",
            qualitative=True, claim_holds=curve[16] > 1.5,
        ))

    # ── (c) hardware validation ───────────────────────────────────────────
    hw_growth = {}
    for name, w in workloads.items():
        units = hardware_units(w, hw_thread_counts, backend=hardware_backend)
        payloads = resolve_units(units)
        hw = {p: breakdown_from_payload(payloads[u.key])
              for p, u in zip(hw_thread_counts, units)}
        hw_growth[name] = serial_growth_curve(hw)
    report.add_table(series_table(
        f"Fig 2(c) — serial section time on hardware ({hardware_backend} backend)",
        "cores", list(hw_thread_counts),
        {n: [c[p] for p in hw_thread_counts] for n, c in hw_growth.items()},
    ))
    for name, curve in hw_growth.items():
        report.add_comparison(PaperComparison(
            claim=f"2(c): {name} serial growth also appears on hardware",
            paper_value="similar to simulation",
            measured_value=f"{curve[max(hw_thread_counts)]:.2f}x",
            qualitative=True,
            claim_holds=curve[max(hw_thread_counts)] > 1.2,
        ))

    # ── (d) model accuracy ────────────────────────────────────────────────
    acc_rows: dict[str, list[float]] = {}
    multi = [p for p in thread_counts if p > 1]
    for name, breakdowns in sim.items():
        ep = extract_parameters(breakdowns, name)
        mp = ep.to_measured_params()
        predicted = {
            p: float(measured_model.serial_time_normalised(mp, p)) for p in multi
        }
        measured_curve = {p: growth[name][p] for p in multi}
        rep = evaluate_accuracy(predicted, measured_curve)
        acc_rows[name] = list(rep.ratios)
        report.add_comparison(PaperComparison(
            claim=f"2(d): {name} model tracks serial growth within ~20%",
            paper_value="-18%..+14%",
            measured_value=(
                f"-{100 * rep.max_underestimation:.0f}%..+"
                f"{100 * rep.max_overestimation:.0f}%"
            ),
            qualitative=True,
            claim_holds=rep.within(0.25),
        ))
    report.add_table(series_table(
        "Fig 2(d) — model accuracy (predicted / simulated serial time)",
        "cores", multi, acc_rows,
    ))

    report.raw.update(speedups=speedups, growth=growth, hw_growth=hw_growth)
    return report


SPEC = ExperimentSpec("fig2", run, stages=(
    Stage("sim-sweep", declare_sim_units),
    Stage("hardware", declare_hardware_units),
))
