"""Table I — baseline configuration."""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.simx.config import MachineConfig
from repro.util.tables import TextTable
from repro.pipeline import ExperimentSpec

__all__ = ["run", "SPEC"]


def run(n_cores: int = 16) -> ExperimentReport:
    """Render the baseline machine configuration as the paper's Table I."""
    cfg = MachineConfig.baseline(n_cores=n_cores)
    report = ExperimentReport("table1", "Baseline configuration")
    t = TextTable(title="Table I — baseline configuration", columns=["parameter", "value"])
    t.add_row(["Fetch, Issue, Commit", str(cfg.core.issue_width)])
    t.add_row([
        "Instn. Window, LSQ, ROB",
        f"{cfg.core.instruction_window}, {cfg.core.lsq_entries}, {cfg.core.rob_entries}",
    ])
    t.add_row([
        "L1 I/D Cache",
        f"{cfg.l1i.size // 1024}K/{cfg.l1d.size // 1024}K "
        f"{cfg.l1i.ways}/{cfg.l1d.ways} way private",
    ])
    t.add_row([
        "L2 Cache, Coherence",
        f"{cfg.l2.size // (1024 * 1024)}M {cfg.l2.ways} way shared, MESI",
    ])
    t.add_row([
        "Branch Pred., BTB Size",
        f"2level GAp {cfg.core.branch_history_entries} entr., {cfg.core.btb_entries}",
    ])
    t.add_row(["Cores", str(cfg.n_cores)])
    report.add_table(t)
    report.raw["config"] = cfg
    return report


SPEC = ExperimentSpec("table1", run)
