"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every driver exposes ``run(**options) -> ExperimentReport``; the registry
maps experiment ids ("table2", "fig4", ...) to drivers so the CLI and the
benchmark harness share one entry point.

============  ========================================================
id            reproduces
============  ========================================================
table1        baseline machine configuration
table2        measured application parameters (simulator sweep)
table3        application classes for the design-space study
table4        dataset-sensitivity study
fig2          scalability, serial growth, hardware validation, accuracy
fig3          speedup predictions to 256 cores (Amdahl vs extended)
fig4          symmetric-CMP design sweeps (4 panels)
fig5          asymmetric-CMP design sweeps (8 panels)
fig7          communication-aware model (2 panels)
ablations     beyond-the-paper design-choice probes
============  ========================================================
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.report import ExperimentReport

__all__ = ["ExperimentReport", "EXPERIMENTS", "get_experiment", "run_experiment"]
