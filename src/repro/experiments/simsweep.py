"""Shared simulator-sweep machinery for the measurement experiments.

Table II and Fig 2 both sweep the three workloads across core counts on
the simulator.  The paper uses the full MineBench datasets; a pure-Python
discrete-event simulator prices that in minutes, so the drivers accept a
``scale`` knob (fraction of the paper's dataset size) defaulting to a size
that keeps a full sweep in tens of seconds.  Because the extracted
quantities are *fractions and growth slopes*, they are stable under
dataset scaling (Table IV of the paper makes exactly this argument) —
the absolute serial percentage shifts with scale, which EXPERIMENTS.md
records.

Results are cached in two tiers:

* an in-process memo per (workload-config, machine-config, threads), so
  the Table II, Fig 2 and benchmark drivers share one set of simulations
  within a run;
* a content-hashed on-disk store (:class:`~repro.experiments.store.SweepStore`),
  so repeated sweeps are free *across* CLI invocations.  The disk key
  hashes everything a result depends on — workload identity and size,
  the full :class:`~repro.simx.config.MachineConfig`, ``mem_scale``, the
  thread count and a simulator-semantics version — so any change to the
  configuration changes the key and stale hits are impossible.  Corrupt
  entries read as misses.

The disk tier defaults to ``.repro-cache/sweeps`` under the current
directory; override with the ``REPRO_SWEEP_CACHE_DIR`` environment
variable, disable with ``REPRO_SWEEP_CACHE=off`` (or per-process via
:func:`set_disk_store`).

When an engine session is installed (:func:`set_engine`, normally via
:func:`repro.engine.session` / the CLI's ``--parallel`` flag), cache
misses are executed across the session's worker pool instead of
serially in-process: each ``(workload, threads, mem_scale, machine)``
point becomes one content-hashed :class:`~repro.engine.units.WorkUnit`
whose key **is** the disk-store key, the scheduler re-checks both cache
tiers, and the results merge back in thread-count order — so a parallel
sweep is byte-identical to a serial one.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro import obs
from repro.engine.executors import SWEEP_POINT
from repro.engine.units import WorkUnit
from repro.experiments.store import SweepStore
from repro.simx import Machine, MachineConfig
from repro.workloads.base import ClusteringWorkloadBase
from repro.workloads.datasets import make_blobs, make_particles
from repro.workloads.fuzzy import FuzzyCMeansWorkload
from repro.workloads.hop import HopWorkload
from repro.workloads.instrument import PhaseBreakdown, breakdown_from_simulation
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.tracegen import program_from_execution

__all__ = [
    "default_workloads",
    "simulate_breakdowns",
    "clear_cache",
    "cache_info",
    "set_disk_store",
    "get_disk_store",
    "set_engine",
    "get_engine",
    "sweep_units",
    "execute_sweep_point",
    "precompute_units",
    "workload_descriptor",
]

#: paper dataset attributes (kmeans/fuzzy: N, D, C; hop: particles)
_PAPER_N = 17695
_PAPER_HOP_N = 61440

#: bump whenever simulator *timing semantics* change, so persisted sweep
#: results from older code can never satisfy a lookup.
_SIM_VERSION = 1

_cache: dict[tuple, PhaseBreakdown] = {}
_stats = {"memory_hits": 0, "disk_hits": 0, "misses": 0}

_CACHE_LOOKUPS = obs.counter(
    "sweep_cache_lookups_total",
    "sweep-cache lookups by tier and outcome",
    labels=("tier", "result"),
)

#: _stats key → (tier, result) label pair on ``sweep_cache_lookups_total``
_LOOKUP_LABELS = {
    "memory_hits": ("memory", "hit"),
    "disk_hits": ("disk", "hit"),
    "misses": ("all", "miss"),
}


def _record_lookup(stat: str) -> None:
    """Count one cache lookup in both the legacy dict and the registry."""
    _stats[stat] += 1
    tier, result = _LOOKUP_LABELS[stat]
    _CACHE_LOOKUPS.inc(tier=tier, result=result)


_DISK_DEFAULT = object()  # sentinel: resolve from the environment
_disk_store: "SweepStore | None | object" = _DISK_DEFAULT

#: ambient engine session (None = serial); see :func:`set_engine`
_engine = None


def set_engine(session) -> None:
    """Install (or with ``None`` remove) the ambient engine session.

    While installed, :func:`simulate_breakdowns` routes cache misses
    through the session's worker pool.  :func:`repro.engine.session`
    manages this automatically; only call it directly when driving an
    :class:`~repro.engine.scheduler.EngineSession` by hand.
    """
    global _engine
    _engine = session


def get_engine():
    """The ambient engine session, or ``None`` when running serially."""
    return _engine


def set_disk_store(store: "SweepStore | str | Path | None") -> None:
    """Point the disk tier somewhere else, or disable it with ``None``.

    Accepts a :class:`~repro.experiments.store.SweepStore`, a directory
    path, or ``None``.  Tests use this to isolate themselves in a tmp
    directory; the CLI's ``--no-sweep-cache`` flag passes ``None``.
    """
    global _disk_store
    if isinstance(store, (str, Path)):
        store = SweepStore(store)
    _disk_store = store


def _get_disk() -> "SweepStore | None":
    global _disk_store
    if _disk_store is _DISK_DEFAULT:
        if os.environ.get("REPRO_SWEEP_CACHE", "").lower() in ("0", "off", "no", "false"):
            _disk_store = None
        else:
            root = os.environ.get(
                "REPRO_SWEEP_CACHE_DIR", str(Path(".repro-cache") / "sweeps")
            )
            _disk_store = SweepStore(root)
    return _disk_store


def get_disk_store() -> "SweepStore | None":
    """The resolved disk tier (None when disabled)."""
    return _get_disk()


def clear_cache(memory_only: bool = False) -> None:
    """Drop cached simulation results from both tiers.

    Test-isolation contract: after ``clear_cache()`` the next
    :func:`simulate_breakdowns` call re-runs the simulator — no result can
    survive in the in-process memo *or* the on-disk store, and the hit/miss
    counters restart from zero.  Pass ``memory_only=True`` to drop just the
    in-process memo (e.g. to measure the disk tier itself, or to free
    memory while keeping warm sweeps on disk).
    """
    _cache.clear()
    for k in _stats:
        _stats[k] = 0
    from repro.pipeline import runtime as _pipeline_runtime

    _pipeline_runtime.clear_memo()
    if not memory_only:
        disk = _get_disk()
        if disk is not None:
            disk.clear()


def cache_info() -> dict:
    """Hit/miss counters and tier sizes (for benchmarks and ``cache info``).

    When the ambient engine session carries a run journal (a ``--run-id``
    / ``--resume`` run), the journal tier is reported too — its entries
    are consulted *ahead of* the disk store.
    """
    disk = _get_disk()
    lookups = sum(_stats.values())
    info = {
        **_stats,
        "lookups": lookups,
        "hit_rate": (_stats["memory_hits"] + _stats["disk_hits"]) / lookups
        if lookups
        else 0.0,
        "memory_entries": len(_cache),
        "disk_entries": len(disk) if disk is not None else 0,
        "disk_path": str(disk.root) if disk is not None else None,
    }
    journal = getattr(_engine, "journal", None)
    if journal is not None:
        info["journal_entries"] = len(journal)
        info["journal_path"] = str(journal.path)
        info["journal_hits"] = _engine.stats.get("journal_hits", 0)
    return info


def default_workloads(
    scale: float = 0.15, max_iterations: int = 4
) -> Mapping[str, ClusteringWorkloadBase]:
    """The three paper workloads at ``scale`` times the paper's data size."""
    if not (0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    n = max(200, int(_PAPER_N * scale))
    n_hop = max(400, int(_PAPER_HOP_N * scale * 0.25))
    return {
        "kmeans": KMeansWorkload(
            make_blobs(n, 9, 8, seed=11, label="kmeans-base"),
            max_iterations=max_iterations, tolerance=1e-12,
        ),
        "fuzzy": FuzzyCMeansWorkload(
            make_blobs(n, 9, 8, seed=21, label="fuzzy-base"),
            max_iterations=max_iterations, tolerance=1e-12,
        ),
        "hop": HopWorkload(
            make_particles(n_hop, n_halos=16, seed=31, label="hop-default"),
            n_neighbors=12,
        ),
    }


def _dataset_descriptor(ds) -> dict:
    """Full identity of a dataset: label, shape, and a content digest.

    The digest covers the actual array bytes, so two datasets that differ
    only in their generator seed (same label, same shape) still key
    differently — without it, Table IV's dim/center/base variants (equal
    N, equal name) would silently share one cache entry.
    """
    digest = hashlib.sha256()
    shape: dict = {}
    for field in ("points", "positions", "masses"):
        arr = getattr(ds, field, None)
        if arr is not None:
            digest.update(np.ascontiguousarray(arr).tobytes())
            shape[field] = list(np.asarray(arr).shape)
    for field in ("n_centers", "n_groups_hint"):
        v = getattr(ds, field, None)
        if v is not None:
            shape[field] = int(v)
    return {
        "label": getattr(ds, "label", ""),
        "shape": shape,
        "digest": digest.hexdigest(),
    }


#: workload knobs that change simulation results and so belong in the key
_WORKLOAD_KNOBS = (
    "n_items", "n_bins", "seed", "max_iterations", "tolerance",
    "n_neighbors", "reduction_strategy",
)


def workload_descriptor(workload: ClusteringWorkloadBase) -> dict:
    """Everything that identifies a workload for caching purposes: its
    name, its algorithmic knobs, and the exact dataset content."""
    desc: dict = {"name": workload.name}
    ds = getattr(workload, "dataset", None)
    if ds is not None:
        desc["dataset"] = _dataset_descriptor(ds)
    for knob in _WORKLOAD_KNOBS:
        v = getattr(workload, knob, None)
        if v is not None:
            desc[knob] = v
    return desc


def _key(
    workload: ClusteringWorkloadBase, p: int, mem_scale: int, config: MachineConfig
) -> tuple:
    wdesc = json.dumps(workload_descriptor(workload), sort_keys=True)
    return (wdesc, p, mem_scale, config)


def _disk_description(
    workload: ClusteringWorkloadBase, p: int, mem_scale: int, config: MachineConfig
) -> dict:
    return {
        "sim_version": _SIM_VERSION,
        "workload": workload_descriptor(workload),
        "threads": p,
        "mem_scale": mem_scale,
        "machine": asdict(config),
    }


_BREAKDOWN_FIELDS = ("n_threads", "total", "init", "parallel", "reduction", "serial")


def _breakdown_to_payload(b: PhaseBreakdown) -> dict:
    return {f: getattr(b, f) for f in _BREAKDOWN_FIELDS}


def _breakdown_from_payload(payload: dict) -> "PhaseBreakdown | None":
    """Rebuild a stored breakdown; None (a miss) on any malformed payload."""
    try:
        return PhaseBreakdown(
            n_threads=int(payload["n_threads"]),
            **{f: float(payload[f]) for f in _BREAKDOWN_FIELDS[1:]},
        )
    except (KeyError, TypeError, ValueError):
        return None


def _simulate_point(
    workload: ClusteringWorkloadBase, p: int, mem_scale: int, config: MachineConfig
) -> PhaseBreakdown:
    """One simulator run — the ground truth both execution paths share."""
    prog = program_from_execution(workload.execute(p), mem_scale=mem_scale)
    return breakdown_from_simulation(Machine(config).run(prog))


def execute_sweep_point(
    workload: ClusteringWorkloadBase, p: int, mem_scale: int, config: MachineConfig
) -> dict:
    """Run one sweep point and return its payload (the engine's
    ``sweep-point`` executor; runs inside worker processes)."""
    return _breakdown_to_payload(_simulate_point(workload, p, mem_scale, config))


def _unit_for(
    workload: ClusteringWorkloadBase, p: int, mem_scale: int, config: MachineConfig
) -> WorkUnit:
    """One sweep point as an engine work unit.

    The unit key is :meth:`SweepStore.key_for` over the same description
    the disk tier hashes, so the engine's dedup identity and the on-disk
    cache key coincide by construction.
    """
    return WorkUnit(
        kind=SWEEP_POINT,
        key=SweepStore.key_for(_disk_description(workload, p, mem_scale, config)),
        spec=(workload, p, mem_scale, config),
        label=f"{workload.name}@p={p}",
    )


def sweep_units(
    workload: ClusteringWorkloadBase,
    thread_counts: Iterable[int] = (1, 2, 4, 8, 16),
    n_cores: int = 16,
    mem_scale: int = 2,
    config: "MachineConfig | None" = None,
) -> list[WorkUnit]:
    """Declare a :func:`simulate_breakdowns` sweep as engine work units
    (same defaults, same keys) without running anything."""
    if config is None:
        config = MachineConfig.baseline(n_cores=n_cores)
    return [_unit_for(workload, p, mem_scale, config) for p in thread_counts]


def _unit_cache_get(unit: WorkUnit) -> "dict | None":
    """Scheduler hook: look a unit up in both tiers (counts hits/misses)."""
    workload, p, mem_scale, config = unit.spec
    memo_key = _key(workload, p, mem_scale, config)
    hit = _cache.get(memo_key)
    if hit is not None:
        _record_lookup("memory_hits")
        return _breakdown_to_payload(hit)
    disk = _get_disk()
    if disk is not None:
        payload = disk.get(unit.key)
        if payload is not None:
            restored = _breakdown_from_payload(payload)
            if restored is not None:
                _record_lookup("disk_hits")
                _cache[memo_key] = restored
                return payload
    _record_lookup("misses")
    return None


def _unit_cache_put(unit: WorkUnit, payload: dict) -> None:
    """Scheduler hook: write a fresh result into both tiers."""
    workload, p, mem_scale, config = unit.spec
    restored = _breakdown_from_payload(payload)
    if restored is None:
        raise ValueError(f"malformed sweep payload for {unit.describe()}")
    _cache[_key(workload, p, mem_scale, config)] = restored
    disk = _get_disk()
    if disk is not None:
        disk.put(unit.key, payload)


def precompute_units(session, units: Iterable[WorkUnit]) -> None:
    """Execute sweep units through ``session``, warming both cache tiers."""
    session.run_units(units, cache_get=_unit_cache_get, cache_put=_unit_cache_put)


def simulate_breakdowns(
    workload: ClusteringWorkloadBase,
    thread_counts: Iterable[int] = (1, 2, 4, 8, 16),
    n_cores: int = 16,
    mem_scale: int = 2,
    config: "MachineConfig | None" = None,
) -> dict[int, PhaseBreakdown]:
    """Run the workload on the simulator per thread count and return the
    per-phase breakdowns (cached in memory and on disk).

    ``config`` overrides the machine (default: ``MachineConfig.baseline``
    with ``n_cores`` cores); the cache key covers the full configuration,
    so sweeping variants never cross-contaminate.  With an engine session
    installed (:func:`set_engine`), misses run on the session's worker
    pool; results are identical either way.
    """
    if config is None:
        config = MachineConfig.baseline(n_cores=n_cores)
    thread_counts = list(thread_counts)
    if _engine is not None:
        return _simulate_breakdowns_engine(workload, thread_counts, mem_scale, config)
    disk = _get_disk()
    out: dict[int, PhaseBreakdown] = {}
    for p in thread_counts:
        key = _key(workload, p, mem_scale, config)
        hit = _cache.get(key)
        if hit is not None:
            _record_lookup("memory_hits")
            out[p] = hit
            continue
        disk_key = None
        if disk is not None:
            disk_key = disk.key_for(_disk_description(workload, p, mem_scale, config))
            payload = disk.get(disk_key)
            if payload is not None:
                restored = _breakdown_from_payload(payload)
                if restored is not None:
                    _record_lookup("disk_hits")
                    _cache[key] = restored
                    out[p] = restored
                    continue
        _record_lookup("misses")
        result = _simulate_point(workload, p, mem_scale, config)
        _cache[key] = result
        if disk is not None:
            disk.put(disk_key, _breakdown_to_payload(result))
        out[p] = result
    return out


def _simulate_breakdowns_engine(
    workload: ClusteringWorkloadBase,
    thread_counts: list,
    mem_scale: int,
    config: MachineConfig,
) -> dict[int, PhaseBreakdown]:
    """Engine path: schedule the sweep as work units, merge in our order."""
    units = [_unit_for(workload, p, mem_scale, config) for p in thread_counts]
    payloads = _engine.run_units(
        units, cache_get=_unit_cache_get, cache_put=_unit_cache_put
    )
    out: dict[int, PhaseBreakdown] = {}
    for p, unit in zip(thread_counts, units):
        restored = _breakdown_from_payload(payloads[unit.key])
        if restored is None:  # pragma: no cover - executor contract violation
            raise RuntimeError(f"engine returned malformed payload for {unit.describe()}")
        # _unit_cache_put already populated the memo; keep it warm even if
        # that write was skipped (e.g. a cache_put failure was tolerated)
        _cache.setdefault(_key(workload, p, mem_scale, config), restored)
        out[p] = restored
    return out
