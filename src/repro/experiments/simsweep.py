"""Shared simulator-sweep machinery for the measurement experiments.

Table II and Fig 2 both sweep the three workloads across core counts on
the simulator.  The paper uses the full MineBench datasets; a pure-Python
discrete-event simulator prices that in minutes, so the drivers accept a
``scale`` knob (fraction of the paper's dataset size) defaulting to a size
that keeps a full sweep in tens of seconds.  Because the extracted
quantities are *fractions and growth slopes*, they are stable under
dataset scaling (Table IV of the paper makes exactly this argument) —
the absolute serial percentage shifts with scale, which EXPERIMENTS.md
records.

Results are cached in two tiers:

* an in-process memo per (workload-config, machine-config, threads), so
  the Table II, Fig 2 and benchmark drivers share one set of simulations
  within a run;
* a content-hashed on-disk store (:class:`~repro.experiments.store.SweepStore`),
  so repeated sweeps are free *across* CLI invocations.  The disk key
  hashes everything a result depends on — workload identity and size,
  the full :class:`~repro.simx.config.MachineConfig`, ``mem_scale``, the
  thread count and a simulator-semantics version — so any change to the
  configuration changes the key and stale hits are impossible.  Corrupt
  entries read as misses.

The disk tier defaults to ``.repro-cache/sweeps`` under the current
directory; override with the ``REPRO_SWEEP_CACHE_DIR`` environment
variable, disable with ``REPRO_SWEEP_CACHE=off`` (or per-process via
:func:`set_disk_store`).
"""

from __future__ import annotations

import os
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Mapping

from repro.experiments.store import SweepStore
from repro.simx import Machine, MachineConfig
from repro.workloads.base import ClusteringWorkloadBase
from repro.workloads.datasets import make_blobs, make_particles
from repro.workloads.fuzzy import FuzzyCMeansWorkload
from repro.workloads.hop import HopWorkload
from repro.workloads.instrument import PhaseBreakdown, breakdown_from_simulation
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.tracegen import program_from_execution

__all__ = [
    "default_workloads",
    "simulate_breakdowns",
    "clear_cache",
    "cache_info",
    "set_disk_store",
]

#: paper dataset attributes (kmeans/fuzzy: N, D, C; hop: particles)
_PAPER_N = 17695
_PAPER_HOP_N = 61440

#: bump whenever simulator *timing semantics* change, so persisted sweep
#: results from older code can never satisfy a lookup.
_SIM_VERSION = 1

_cache: dict[tuple, PhaseBreakdown] = {}
_stats = {"memory_hits": 0, "disk_hits": 0, "misses": 0}

_DISK_DEFAULT = object()  # sentinel: resolve from the environment
_disk_store: "SweepStore | None | object" = _DISK_DEFAULT


def set_disk_store(store: "SweepStore | str | Path | None") -> None:
    """Point the disk tier somewhere else, or disable it with ``None``.

    Accepts a :class:`~repro.experiments.store.SweepStore`, a directory
    path, or ``None``.  Tests use this to isolate themselves in a tmp
    directory; the CLI's ``--no-sweep-cache`` flag passes ``None``.
    """
    global _disk_store
    if isinstance(store, (str, Path)):
        store = SweepStore(store)
    _disk_store = store


def _get_disk() -> "SweepStore | None":
    global _disk_store
    if _disk_store is _DISK_DEFAULT:
        if os.environ.get("REPRO_SWEEP_CACHE", "").lower() in ("0", "off", "no", "false"):
            _disk_store = None
        else:
            root = os.environ.get(
                "REPRO_SWEEP_CACHE_DIR", str(Path(".repro-cache") / "sweeps")
            )
            _disk_store = SweepStore(root)
    return _disk_store


def clear_cache(memory_only: bool = False) -> None:
    """Drop cached simulation results from both tiers.

    Test-isolation contract: after ``clear_cache()`` the next
    :func:`simulate_breakdowns` call re-runs the simulator — no result can
    survive in the in-process memo *or* the on-disk store, and the hit/miss
    counters restart from zero.  Pass ``memory_only=True`` to drop just the
    in-process memo (e.g. to measure the disk tier itself, or to free
    memory while keeping warm sweeps on disk).
    """
    _cache.clear()
    for k in _stats:
        _stats[k] = 0
    if not memory_only:
        disk = _get_disk()
        if disk is not None:
            disk.clear()


def cache_info() -> dict:
    """Hit/miss counters and tier sizes (for benchmarks and ``cache info``)."""
    disk = _get_disk()
    lookups = sum(_stats.values())
    return {
        **_stats,
        "lookups": lookups,
        "hit_rate": (_stats["memory_hits"] + _stats["disk_hits"]) / lookups
        if lookups
        else 0.0,
        "memory_entries": len(_cache),
        "disk_entries": len(disk) if disk is not None else 0,
        "disk_path": str(disk.root) if disk is not None else None,
    }


def default_workloads(
    scale: float = 0.15, max_iterations: int = 4
) -> Mapping[str, ClusteringWorkloadBase]:
    """The three paper workloads at ``scale`` times the paper's data size."""
    if not (0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    n = max(200, int(_PAPER_N * scale))
    n_hop = max(400, int(_PAPER_HOP_N * scale * 0.25))
    return {
        "kmeans": KMeansWorkload(
            make_blobs(n, 9, 8, seed=11, label="kmeans-base"),
            max_iterations=max_iterations, tolerance=1e-12,
        ),
        "fuzzy": FuzzyCMeansWorkload(
            make_blobs(n, 9, 8, seed=21, label="fuzzy-base"),
            max_iterations=max_iterations, tolerance=1e-12,
        ),
        "hop": HopWorkload(
            make_particles(n_hop, n_halos=16, seed=31, label="hop-default"),
            n_neighbors=12,
        ),
    }


def _workload_fields(workload: ClusteringWorkloadBase) -> tuple:
    ds = getattr(workload, "dataset", None)
    if ds is not None:
        size = getattr(ds, "n_points", getattr(ds, "n_particles", 0))
    else:
        size = getattr(workload, "n_items", 0)
    return (
        workload.name,
        size,
        getattr(workload, "n_bins", 0),
        getattr(workload, "max_iterations", 1),
        getattr(workload, "reduction_strategy", "serial"),
    )


def _key(
    workload: ClusteringWorkloadBase, p: int, mem_scale: int, config: MachineConfig
) -> tuple:
    return (*_workload_fields(workload), p, mem_scale, config)


def _disk_description(
    workload: ClusteringWorkloadBase, p: int, mem_scale: int, config: MachineConfig
) -> dict:
    name, size, n_bins, max_iter, reduction = _workload_fields(workload)
    return {
        "sim_version": _SIM_VERSION,
        "workload": {
            "name": name,
            "size": size,
            "n_bins": n_bins,
            "max_iterations": max_iter,
            "reduction_strategy": reduction,
        },
        "threads": p,
        "mem_scale": mem_scale,
        "machine": asdict(config),
    }


_BREAKDOWN_FIELDS = ("n_threads", "total", "init", "parallel", "reduction", "serial")


def _breakdown_to_payload(b: PhaseBreakdown) -> dict:
    return {f: getattr(b, f) for f in _BREAKDOWN_FIELDS}


def _breakdown_from_payload(payload: dict) -> "PhaseBreakdown | None":
    """Rebuild a stored breakdown; None (a miss) on any malformed payload."""
    try:
        return PhaseBreakdown(
            n_threads=int(payload["n_threads"]),
            **{f: float(payload[f]) for f in _BREAKDOWN_FIELDS[1:]},
        )
    except (KeyError, TypeError, ValueError):
        return None


def simulate_breakdowns(
    workload: ClusteringWorkloadBase,
    thread_counts: Iterable[int] = (1, 2, 4, 8, 16),
    n_cores: int = 16,
    mem_scale: int = 2,
    config: "MachineConfig | None" = None,
) -> dict[int, PhaseBreakdown]:
    """Run the workload on the simulator per thread count and return the
    per-phase breakdowns (cached in memory and on disk).

    ``config`` overrides the machine (default: ``MachineConfig.baseline``
    with ``n_cores`` cores); the cache key covers the full configuration,
    so sweeping variants never cross-contaminate.
    """
    if config is None:
        config = MachineConfig.baseline(n_cores=n_cores)
    machine = Machine(config)
    disk = _get_disk()
    out: dict[int, PhaseBreakdown] = {}
    for p in thread_counts:
        key = _key(workload, p, mem_scale, config)
        hit = _cache.get(key)
        if hit is not None:
            _stats["memory_hits"] += 1
            out[p] = hit
            continue
        disk_key = None
        if disk is not None:
            disk_key = disk.key_for(_disk_description(workload, p, mem_scale, config))
            payload = disk.get(disk_key)
            if payload is not None:
                restored = _breakdown_from_payload(payload)
                if restored is not None:
                    _stats["disk_hits"] += 1
                    _cache[key] = restored
                    out[p] = restored
                    continue
        _stats["misses"] += 1
        prog = program_from_execution(workload.execute(p), mem_scale=mem_scale)
        result = breakdown_from_simulation(machine.run(prog))
        _cache[key] = result
        if disk is not None:
            disk.put(disk_key, _breakdown_to_payload(result))
        out[p] = result
    return out
