"""Shared simulator-sweep machinery for the measurement experiments.

Table II and Fig 2 both sweep the three workloads across core counts on
the simulator.  The paper uses the full MineBench datasets; a pure-Python
discrete-event simulator prices that in minutes, so the drivers accept a
``scale`` knob (fraction of the paper's dataset size) defaulting to a size
that keeps a full sweep in tens of seconds.  Because the extracted
quantities are *fractions and growth slopes*, they are stable under
dataset scaling (Table IV of the paper makes exactly this argument) —
the absolute serial percentage shifts with scale, which EXPERIMENTS.md
records.

Results are memoised per (workload-config, cores) within a process, so the
Table II, Fig 2 and benchmark drivers share one set of simulations.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.simx import Machine, MachineConfig
from repro.workloads.base import ClusteringWorkloadBase
from repro.workloads.datasets import make_blobs, make_particles
from repro.workloads.fuzzy import FuzzyCMeansWorkload
from repro.workloads.hop import HopWorkload
from repro.workloads.instrument import PhaseBreakdown, breakdown_from_simulation
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.tracegen import program_from_execution

__all__ = ["default_workloads", "simulate_breakdowns", "clear_cache"]

#: paper dataset attributes (kmeans/fuzzy: N, D, C; hop: particles)
_PAPER_N = 17695
_PAPER_HOP_N = 61440

_cache: dict[tuple, PhaseBreakdown] = {}


def clear_cache() -> None:
    """Drop memoised simulation results (tests use this for isolation)."""
    _cache.clear()


def default_workloads(
    scale: float = 0.15, max_iterations: int = 4
) -> Mapping[str, ClusteringWorkloadBase]:
    """The three paper workloads at ``scale`` times the paper's data size."""
    if not (0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    n = max(200, int(_PAPER_N * scale))
    n_hop = max(400, int(_PAPER_HOP_N * scale * 0.25))
    return {
        "kmeans": KMeansWorkload(
            make_blobs(n, 9, 8, seed=11, label="kmeans-base"),
            max_iterations=max_iterations, tolerance=1e-12,
        ),
        "fuzzy": FuzzyCMeansWorkload(
            make_blobs(n, 9, 8, seed=21, label="fuzzy-base"),
            max_iterations=max_iterations, tolerance=1e-12,
        ),
        "hop": HopWorkload(
            make_particles(n_hop, n_halos=16, seed=31, label="hop-default"),
            n_neighbors=12,
        ),
    }


def _key(workload: ClusteringWorkloadBase, p: int, n_cores: int, mem_scale: int) -> tuple:
    ds = getattr(workload, "dataset", None)
    if ds is not None:
        size = getattr(ds, "n_points", getattr(ds, "n_particles", 0))
    else:
        size = getattr(workload, "n_items", 0)
    return (
        workload.name,
        size,
        getattr(workload, "n_bins", 0),
        getattr(workload, "max_iterations", 1),
        getattr(workload, "reduction_strategy", "serial"),
        p,
        n_cores,
        mem_scale,
    )


def simulate_breakdowns(
    workload: ClusteringWorkloadBase,
    thread_counts: Iterable[int] = (1, 2, 4, 8, 16),
    n_cores: int = 16,
    mem_scale: int = 2,
) -> dict[int, PhaseBreakdown]:
    """Run the workload on the simulator per thread count and return the
    per-phase breakdowns (memoised)."""
    machine = Machine(MachineConfig.baseline(n_cores=n_cores))
    out: dict[int, PhaseBreakdown] = {}
    for p in thread_counts:
        key = _key(workload, p, n_cores, mem_scale)
        if key not in _cache:
            prog = program_from_execution(workload.execute(p), mem_scale=mem_scale)
            _cache[key] = breakdown_from_simulation(machine.run(prog))
        out[p] = _cache[key]
    return out
