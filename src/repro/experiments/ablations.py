"""Ablation studies beyond the paper's figures.

Design-choice probes DESIGN.md commits to:

* **perf-law sweep** — how the optimal symmetric core size moves with the
  Pollack exponent theta (the paper fixes theta = 0.5);
* **topology sweep** — Fig 7(a) re-run with exact torus / ring / crossbar
  communication growth instead of the mesh closed form;
* **reduction-strategy ablation** — measured (simulator), not modelled:
  kmeans with serial vs tree vs parallel merging;
* **optimal-r map** — the Fig 4 conclusion as a surface over the
  (fcon, fored) plane.
"""

from __future__ import annotations

import numpy as np

from repro.core import communication as comm
from repro.core import merging, optimizer
from repro.core.params import AppParams
from repro.core.perf import PollackPerf
from repro.experiments.report import ExperimentReport, PaperComparison, series_table
from repro.experiments.simsweep import simulate_breakdowns, sweep_units
from repro.noc.comm_cost import topology_growcomm
from repro.pipeline import ExperimentSpec, Stage
from repro.util.tables import TextTable
from repro.workloads.datasets import make_blobs
from repro.workloads.instrument import extract_parameters
from repro.workloads.kmeans import KMeansWorkload

__all__ = [
    "run_perf_law",
    "run_topology",
    "run_reduction_strategy",
    "run_optimal_r_map",
    "run_machine_model",
    "run",
    "declare_units_reduction",
    "declare_units_machine",
    "SPECS",
]


def _reduction_workloads(scale: float = 0.08) -> dict:
    """The three merge-strategy variants of the kmeans workload."""
    n = max(300, int(17695 * scale))
    return {
        strategy: KMeansWorkload(
            make_blobs(n, 9, 8, seed=11),
            max_iterations=3, tolerance=1e-12, reduction_strategy=strategy,
        )
        for strategy in ("serial", "tree", "parallel")
    }


def declare_units_reduction(
    scale: float = 0.08, thread_counts: tuple = (1, 2, 4, 8, 16)
) -> list:
    """The reduction-strategy ablation's sweep as engine work units."""
    units = []
    for wl in _reduction_workloads(scale).values():
        units.extend(sweep_units(wl, thread_counts, mem_scale=2))
    return units


def _machine_variants(n_cores: int) -> dict:
    """The machine-model ablation's five simulator configurations."""
    from repro.simx import MachineConfig

    return {
        "baseline": MachineConfig.baseline(n_cores=n_cores),
        "banked dram": MachineConfig(n_cores=n_cores, dram="banked"),
        "contended bus": MachineConfig(n_cores=n_cores, bus_occupancy=4),
        "mesh interconnect": MachineConfig.baseline(n_cores, interconnect="mesh"),
        "msi protocol": MachineConfig(n_cores=n_cores, coherence_protocol="msi"),
    }


def _machine_workload(scale: float) -> KMeansWorkload:
    n = max(300, int(17695 * scale))
    return KMeansWorkload(
        make_blobs(n, 9, 8, seed=11), max_iterations=3, tolerance=1e-12
    )


def declare_units_machine(
    scale: float = 0.06, thread_counts: tuple = (1, 2, 4, 8, 16)
) -> list:
    """The machine-model ablation's sweep as engine work units."""
    wl = _machine_workload(scale)
    units = []
    for cfg in _machine_variants(max(thread_counts)).values():
        units.extend(sweep_units(wl, thread_counts, mem_scale=2, config=cfg))
    return units


def run_perf_law(n: int = 256) -> ExperimentReport:
    """Optimal symmetric design vs the area-performance exponent."""
    report = ExperimentReport("ablation-perf", "Pollack-exponent sensitivity")
    params = AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)
    thetas = [0.3, 0.4, 0.5, 0.6, 0.7, 0.85, 1.0]
    rows = []
    for theta in thetas:
        law = PollackPerf(theta)
        best = merging.best_symmetric(params, n, perf=law)
        rows.append((theta, best.r, best.speedup))
    t = TextTable(
        title="optimal symmetric design vs perf(r) = r^theta",
        columns=["theta", "optimal r", "speedup"],
    )
    for theta, r, sp in rows:
        t.add_row([theta, r, sp])
    report.add_table(t)
    speedups = [sp for _, _, sp in rows]
    report.add_comparison(PaperComparison(
        claim="stronger area returns monotonically raise achievable speedup",
        paper_value="monotone in theta",
        measured_value=f"{speedups[0]:.1f}..{speedups[-1]:.1f}",
        qualitative=True,
        claim_holds=all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:])),
    ))
    report.raw["rows"] = rows
    return report


def run_topology(n: int = 256) -> ExperimentReport:
    """Fig 7(a) across interconnect topologies (exact growth laws)."""
    report = ExperimentReport("ablation-topology", "Interconnect sensitivity (Fig 7a)")
    params = AppParams(f=0.99, fcon_share=0.60, fored_share=0.80)
    sizes = merging.power_of_two_sizes(n)
    series = {"mesh (Eq 8)": np.asarray(
        comm.speedup_symmetric_comm(params, n, sizes)
    )}
    peaks = {"mesh (Eq 8)": float(series["mesh (Eq 8)"].max())}
    for topo in ("mesh", "torus", "ring", "hypercube", "crossbar"):
        growth = topology_growcomm(topo)
        sp = np.asarray(
            comm.speedup_symmetric_comm(params, n, sizes, comm=growth)
        )
        series[f"{topo} (exact)"] = sp
        peaks[f"{topo} (exact)"] = float(sp.max())
    report.add_table(series_table(
        "Fig 7(a) under different topologies",
        "r (BCEs/core)", [int(s) for s in sizes], series,
    ))
    report.add_comparison(PaperComparison(
        claim="richer networks give higher peaks: "
              "ring < mesh < torus < hypercube < crossbar",
        paper_value="(ordering)",
        measured_value=", ".join(f"{k}={v:.1f}" for k, v in peaks.items()),
        qualitative=True,
        claim_holds=(
            peaks["ring (exact)"] < peaks["mesh (exact)"]
            < peaks["torus (exact)"] < peaks["hypercube (exact)"]
            < peaks["crossbar (exact)"]
        ),
    ))
    report.raw["peaks"] = peaks
    return report


def run_reduction_strategy(
    scale: float = 0.08, thread_counts: tuple = (1, 2, 4, 8, 16)
) -> ExperimentReport:
    """Measured (simulator) ablation of the merge implementation."""
    report = ExperimentReport(
        "ablation-reduction", "Reduction strategy, measured on the simulator"
    )
    rows = {}
    for strategy, wl in _reduction_workloads(scale).items():
        breakdowns = simulate_breakdowns(wl, thread_counts, mem_scale=2)
        top = max(thread_counts)
        rows[strategy] = {
            "reduction@1": breakdowns[1].reduction,
            f"reduction@{top}": breakdowns[top].reduction,
            "growth": breakdowns[top].reduction / max(breakdowns[1].reduction, 1e-9),
            "fored": extract_parameters(breakdowns, strategy).fored_rel,
        }
    t = TextTable(
        title="kmeans merge cost by strategy (cycles on the master)",
        columns=["strategy", "reduction@1", f"reduction@{max(thread_counts)}",
                 "growth factor", "fitted fored"],
    )
    for s, r in rows.items():
        t.add_row([s, r["reduction@1"], r[f"reduction@{max(thread_counts)}"],
                   round(r["growth"], 2), round(r["fored"], 2)])
    report.add_table(t)
    report.add_comparison(PaperComparison(
        claim="tree merge grows slower than serial merge",
        paper_value="log vs linear",
        measured_value=f"{rows['tree']['growth']:.1f}x vs {rows['serial']['growth']:.1f}x",
        qualitative=True,
        claim_holds=rows["tree"]["growth"] < rows["serial"]["growth"],
    ))
    report.raw["rows"] = rows
    return report


def run_optimal_r_map(n: int = 256) -> ExperimentReport:
    """Optimal symmetric r over the (fcon, fored) plane for f = 0.99."""
    report = ExperimentReport("ablation-rmap", "Optimal core size map")
    cons = [0.9, 0.75, 0.6, 0.45]
    ores = [0.05, 0.2, 0.4, 0.6, 0.8, 0.95]
    grid = optimizer.optimal_r_map(0.99, n, cons, ores)
    t = TextTable(
        title="optimal r (BCEs/core), f=0.99, linear growth",
        columns=["fcon \\ fored", *[f"{o:.0%}" for o in ores]],
    )
    for i, c in enumerate(cons):
        t.add_row([f"{c:.0%}", *[float(v) for v in grid[i]]])
    report.add_table(t)
    report.add_comparison(PaperComparison(
        claim="optimal r is non-decreasing in the overhead share",
        paper_value="shift toward fewer, larger cores",
        measured_value=f"rows min..max: {grid.min():.0f}..{grid.max():.0f}",
        qualitative=True,
        claim_holds=bool(np.all(np.diff(grid, axis=1) >= 0)),
    ))
    report.raw["grid"] = grid
    return report


def run_machine_model(
    scale: float = 0.06, thread_counts: tuple = (1, 2, 4, 8, 16)
) -> ExperimentReport:
    """Are the extracted parameters robust to the simulator's timing model?

    Re-extracts kmeans' Table II parameters under four machine variants —
    flat vs banked DRAM crossed with an infinite-bandwidth vs arbitrated
    bus — plus the MSI protocol.  The paper's conclusions rest on the
    *existence and sign* of the growth, not on one latency table; this
    ablation checks that directly.
    """
    report = ExperimentReport(
        "ablation-machine", "Parameter robustness across machine models"
    )
    wl = _machine_workload(scale)
    variants = _machine_variants(max(thread_counts))
    t = TextTable(
        title="kmeans parameters per machine model",
        columns=["machine", "serial (%)", "fcon (%)", "fored (%)", "alpha"],
    )
    extracted = {}
    for name, cfg in variants.items():
        breakdowns = simulate_breakdowns(wl, thread_counts, mem_scale=2, config=cfg)
        ep = extract_parameters(breakdowns, name)
        extracted[name] = ep
        t.add_row([
            name, round(ep.serial_pct, 3), round(100 * ep.fcon_share, 1),
            round(100 * ep.fored_rel, 1), round(ep.growth_alpha, 2),
        ])
    report.add_table(t)
    report.add_comparison(PaperComparison(
        claim="the growing merge exists under every machine model",
        paper_value="fored > 0 everywhere",
        measured_value=", ".join(
            f"{n}={100 * e.fored_rel:.0f}%" for n, e in extracted.items()
        ),
        qualitative=True,
        claim_holds=all(e.fored_rel > 0.05 for e in extracted.values()),
    ))
    shares = [e.fcon_share for e in extracted.values()]
    report.add_comparison(PaperComparison(
        claim="the fcon/fred split is stable across machine models",
        paper_value="within ~15 points",
        measured_value=f"fcon {100 * min(shares):.0f}%..{100 * max(shares):.0f}%",
        qualitative=True, claim_holds=max(shares) - min(shares) < 0.15,
    ))
    report.raw["extracted"] = extracted
    return report


def run() -> ExperimentReport:
    """All ablations, concatenated into one report."""
    combined = ExperimentReport("ablations", "Design-choice ablations")
    for sub in (run_perf_law(), run_topology(), run_reduction_strategy(), run_optimal_r_map()):
        combined.tables.extend(sub.tables)
        combined.comparisons.extend(sub.comparisons)
        combined.notes.extend(sub.notes)
        combined.raw[sub.experiment_id] = sub.raw
    return combined


def _declare_units_aggregate() -> list:
    """The aggregate runner takes no options, so its only simulator work
    is the reduction-strategy ablation at its defaults."""
    return declare_units_reduction()


SPECS = (
    ExperimentSpec("ablation-perf", run_perf_law),
    ExperimentSpec("ablation-topology", run_topology),
    ExperimentSpec(
        "ablation-reduction", run_reduction_strategy,
        stages=(Stage("sim-sweep", declare_units_reduction),),
    ),
    ExperimentSpec("ablation-rmap", run_optimal_r_map),
    ExperimentSpec(
        "ablation-machine", run_machine_model,
        stages=(Stage("sim-sweep", declare_units_machine),),
    ),
    ExperimentSpec(
        "ablations", run,
        stages=(Stage("sim-sweep", _declare_units_aggregate),),
    ),
)
