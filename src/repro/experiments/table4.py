"""Table IV — dataset-sensitivity study.

Runs kmeans and fuzzy over the scaled dataset variants (dimensions ×2,
points ×2, centers ×4) plus hop's default/medium sets, extracts the
fractions, and checks the paper's trends: scaling points raises f (merge
work is independent of N); scaling dimensions or centers leaves the shares
roughly unchanged; hop's parallel fraction drops on the larger set.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport, PaperComparison
from repro.experiments.simsweep import simulate_breakdowns, sweep_units
from repro.pipeline import ExperimentSpec, Stage
from repro.util.tables import TextTable
from repro.workloads.datasets import make_blobs, make_particles
from repro.workloads.fuzzy import FuzzyCMeansWorkload
from repro.workloads.hop import HopWorkload
from repro.workloads.instrument import extract_parameters
from repro.workloads.kmeans import KMeansWorkload

__all__ = ["run", "declare_units", "SPEC"]


def declare_units(
    scale: float = 0.08,
    thread_counts: tuple = (1, 2, 4, 8),
    mem_scale: int = 4,
) -> list:
    """Table IV's ten-variant sweep as engine work units (mirrors
    :func:`run`'s defaults so the keys match what the driver will ask for)."""
    units = []
    for workload in _variants(scale).values():
        units.extend(sweep_units(
            workload, thread_counts, n_cores=max(thread_counts), mem_scale=mem_scale
        ))
    return units


def _variants(scale: float):
    """The Table IV grid at ``scale`` times the paper's sizes."""
    n = max(300, int(17695 * scale))
    n2 = 2 * n
    nh = max(500, int(61440 * scale * 0.2))
    nh2 = 2 * nh  # paper's medium set is 8x; 2x keeps the sweep tractable
    mk = lambda *a, **k: make_blobs(*a, **k)  # noqa: E731
    return {
        "kmeans-base":   KMeansWorkload(mk(n, 9, 8, seed=11), max_iterations=3, tolerance=1e-12),
        "kmeans-dim":    KMeansWorkload(mk(n, 18, 8, seed=12), max_iterations=3, tolerance=1e-12),
        "kmeans-point":  KMeansWorkload(mk(n2, 18, 8, seed=13), max_iterations=3, tolerance=1e-12),
        "kmeans-center": KMeansWorkload(mk(n, 18, 32, seed=14), max_iterations=3, tolerance=1e-12),
        "fuzzy-base":    FuzzyCMeansWorkload(mk(n, 9, 8, seed=21), max_iterations=3, tolerance=1e-12),
        "fuzzy-dim":     FuzzyCMeansWorkload(mk(n, 18, 8, seed=22), max_iterations=3, tolerance=1e-12),
        "fuzzy-point":   FuzzyCMeansWorkload(mk(n2, 18, 8, seed=23), max_iterations=3, tolerance=1e-12),
        "fuzzy-center":  FuzzyCMeansWorkload(mk(n, 18, 32, seed=24), max_iterations=3, tolerance=1e-12),
        # the paper's medium set is 8x the default; a larger N-body volume
        # holds disproportionately more halos, so the merge (group tables,
        # slab boundaries) grows faster than the parallel work — the
        # mechanism behind hop-med's lower parallel fraction in Table IV.
        "hop-default":   HopWorkload(make_particles(nh, n_halos=16, seed=31), n_neighbors=12),
        "hop-med":       HopWorkload(make_particles(nh2, n_halos=64, seed=32), n_neighbors=12),
    }


def run(
    scale: float = 0.08,
    thread_counts: tuple = (1, 2, 4, 8),
    mem_scale: int = 4,
) -> ExperimentReport:
    """Regenerate Table IV from simulator measurements."""
    report = ExperimentReport("table4", "Dataset sensitivity")
    table = TextTable(
        title="Table IV — dataset sensitivity",
        columns=["data label", "N", "D", "C", "f", "fred (%)", "fcon (%)"],
    )
    extracted = {}
    for label, workload in _variants(scale).items():
        breakdowns = simulate_breakdowns(
            workload, thread_counts, n_cores=max(thread_counts), mem_scale=mem_scale
        )
        ep = extract_parameters(breakdowns, label)
        extracted[label] = ep
        ds = workload.dataset
        n_pts = getattr(ds, "n_points", getattr(ds, "n_particles", 0))
        table.add_row([
            label, n_pts,
            getattr(ds, "n_dims", 3), getattr(ds, "n_centers", 0),
            round(1 - ep.serial_pct / 100, 5),
            round(100 * ep.fred_share, 1),
            round(100 * ep.fcon_share, 1),
        ])
    report.add_table(table)

    f_of = lambda label: 1 - extracted[label].serial_pct / 100  # noqa: E731
    report.add_comparison(PaperComparison(
        claim="kmeans: scaling points raises the parallel fraction",
        paper_value="0.99992 > 0.99984",
        measured_value=f"{f_of('kmeans-point'):.5f} vs {f_of('kmeans-dim'):.5f}",
        qualitative=True,
        claim_holds=f_of("kmeans-point") > f_of("kmeans-dim"),
    ))
    report.add_comparison(PaperComparison(
        claim="fuzzy: scaling points raises the parallel fraction",
        paper_value="0.99999 > 0.99997",
        measured_value=f"{f_of('fuzzy-point'):.5f} vs {f_of('fuzzy-dim'):.5f}",
        qualitative=True,
        claim_holds=f_of("fuzzy-point") > f_of("fuzzy-dim"),
    ))
    report.add_comparison(PaperComparison(
        claim="kmeans: scaling D or C leaves shares roughly unchanged",
        paper_value="fred 41-43% across dim/center variants",
        measured_value=(
            f"{100 * extracted['kmeans-dim'].fred_share:.0f}% / "
            f"{100 * extracted['kmeans-center'].fred_share:.0f}%"
        ),
        qualitative=True,
        claim_holds=abs(
            extracted["kmeans-dim"].fred_share - extracted["kmeans-center"].fred_share
        ) < 0.15,
    ))
    report.add_comparison(PaperComparison(
        claim="hop: larger set shifts serial time toward the merge "
              "(mechanism behind the paper's f drop for hop-med)",
        paper_value="fred 15% vs 12%",
        measured_value=(
            f"fred {100 * extracted['hop-med'].fred_share:.0f}% vs "
            f"{100 * extracted['hop-default'].fred_share:.0f}%"
        ),
        qualitative=True,
        claim_holds=extracted["hop-med"].fred_share
        >= extracted["hop-default"].fred_share - 1e-6,
    ))
    report.add_note(
        f"datasets at scale={scale} of the paper's sizes; the paper's own "
        "point is that the fraction structure is insensitive to data size."
    )
    report.add_note(
        "hop's absolute f delta in the paper (0.999 vs 0.998) is 0.1%; at "
        "reduced dataset scale that ordering sits inside measurement noise, "
        "so the comparison above checks the reduction-share mechanism "
        "instead (see EXPERIMENTS.md)."
    )
    report.raw["extracted"] = extracted
    return report


SPEC = ExperimentSpec("table4", run, stages=(Stage("sim-sweep", declare_units),))
