"""Experiment report container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.util.tables import TextTable

__all__ = ["ExperimentReport", "PaperComparison"]


@dataclass(frozen=True)
class PaperComparison:
    """One quantitative claim of the paper checked against our measurement.

    ``matches`` applies ``tolerance`` as a relative bound when both values
    are numeric; qualitative claims use ``claim_holds`` directly.

    Construction validates the combination up front: a qualitative claim
    must carry its ``claim_holds`` verdict, and a quantitative one must
    carry values ``float()`` accepts — otherwise ``matches`` would fail
    (or silently report False) only when the scoreboard renders, far from
    the driver bug that produced it.
    """

    claim: str
    paper_value: "float | str"
    measured_value: "float | str"
    tolerance: float = 0.05
    qualitative: bool = False
    claim_holds: "bool | None" = None

    def __post_init__(self) -> None:
        if self.qualitative:
            if self.claim_holds is None:
                raise ValueError(
                    f"qualitative comparison {self.claim!r} needs claim_holds"
                )
            return
        for name, value in (("paper_value", self.paper_value),
                            ("measured_value", self.measured_value)):
            try:
                float(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"quantitative comparison {self.claim!r} has non-numeric "
                    f"{name} {value!r}; pass qualitative=True with "
                    "claim_holds, or a numeric value"
                ) from None

    def matches(self) -> bool:
        if self.qualitative:
            return bool(self.claim_holds)
        paper = float(self.paper_value)
        ours = float(self.measured_value)
        if paper == 0:
            return abs(ours) <= self.tolerance
        return abs(ours - paper) / abs(paper) <= self.tolerance


@dataclass
class ExperimentReport:
    """Everything an experiment produced, renderable as text or CSV."""

    experiment_id: str
    title: str
    tables: list[TextTable] = field(default_factory=list)
    comparisons: list[PaperComparison] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    raw: dict = field(default_factory=dict)

    def add_table(self, table: TextTable) -> None:
        self.tables.append(table)

    def add_comparison(self, cmp_: PaperComparison) -> None:
        self.comparisons.append(cmp_)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    @property
    def all_match(self) -> bool:
        """True when every recorded paper comparison holds."""
        return all(c.matches() for c in self.comparisons)

    def render(self) -> str:
        """Full text report: tables, then the paper-vs-measured scoreboard."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for t in self.tables:
            parts.append(t.render())
        if self.comparisons:
            score = TextTable(
                title="paper vs measured",
                columns=["claim", "paper", "measured", "ok"],
            )
            for c in self.comparisons:
                score.add_row([
                    c.claim,
                    c.paper_value if isinstance(c.paper_value, str) else float(c.paper_value),
                    c.measured_value
                    if isinstance(c.measured_value, str)
                    else float(c.measured_value),
                    "yes" if c.matches() else "NO",
                ])
            parts.append(score.render())
        for n in self.notes:
            parts.append(f"note: {n}")
        return "\n\n".join(parts)


def series_table(
    title: str,
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
) -> TextTable:
    """A figure's data as a table (x column + one column per series)."""
    t = TextTable(title=title, columns=[x_name, *series.keys()])
    for i, x in enumerate(x_values):
        t.add_row([x, *(float(v[i]) for v in series.values())])
    return t
