"""Table II — measured application parameters.

Sweeps kmeans, fuzzy and hop across core counts on the simulator, extracts
(f, fcon, fred, fored) with the paper's methodology, and prints them next
to the paper's values.  Absolute serial percentages depend on the dataset
scale (our default sweep uses scaled-down data; see
:mod:`repro.experiments.simsweep`); the comparisons assert the *structure*:
serial fractions are tiny, the reduction share is substantial, and the
overhead slope is positive (superlinear for hop).
"""

from __future__ import annotations

from repro.core.params import TABLE2
from repro.experiments.report import ExperimentReport, PaperComparison
from repro.experiments.simsweep import default_workloads, simulate_breakdowns, sweep_units
from repro.pipeline import ExperimentSpec, Stage
from repro.util.tables import TextTable
from repro.workloads.instrument import extract_parameters

__all__ = ["run", "declare_units", "SPEC"]


def declare_units(
    scale: float = 0.15,
    thread_counts: tuple = (1, 2, 4, 8, 16),
    mem_scale: int = 2,
) -> list:
    """Table II's simulator sweep as engine work units (mirrors
    :func:`run`'s defaults so the keys match what the driver will ask for)."""
    units = []
    for workload in default_workloads(scale).values():
        units.extend(sweep_units(workload, thread_counts, mem_scale=mem_scale))
    return units


def run(
    scale: float = 0.15,
    thread_counts: tuple = (1, 2, 4, 8, 16),
    mem_scale: int = 2,
) -> ExperimentReport:
    """Regenerate Table II from simulator measurements."""
    report = ExperimentReport("table2", "Application parameters (simulated)")
    table = TextTable(
        title="Table II — application parameters",
        columns=[
            "application", "serial (%)", "fored (%)", "fred (%)", "fcon (%)", "f",
            "growth alpha",
        ],
    )
    extracted = {}
    for name, workload in default_workloads(scale).items():
        breakdowns = simulate_breakdowns(workload, thread_counts, mem_scale=mem_scale)
        ep = extract_parameters(breakdowns, name)
        extracted[name] = ep
        table.add_row([
            name,
            round(ep.serial_pct, 4),
            round(100 * ep.fored_rel, 1),
            round(100 * ep.fred_share, 1),
            round(100 * ep.fcon_share, 1),
            round(1 - ep.serial_pct / 100, 5),
            round(ep.growth_alpha, 2),
        ])
    report.add_table(table)

    paper = TextTable(
        title="Table II — paper's values (default MineBench datasets)",
        columns=["application", "serial (%)", "fored (%)", "fred (%)", "fcon (%)", "f"],
    )
    for name, mp in TABLE2.items():
        paper.add_row([
            name, mp.serial_pct, 100 * mp.fored_rel, 100 * mp.fred_share,
            100 * mp.fcon_share, mp.f,
        ])
    report.add_table(paper)

    # structural claims
    for name, ep in extracted.items():
        report.add_comparison(PaperComparison(
            claim=f"{name}: serial section is a small fraction (< 2%)",
            paper_value="< 0.1%", measured_value=f"{ep.serial_pct:.3f}%",
            qualitative=True, claim_holds=ep.serial_pct < 2.0,
        ))
        report.add_comparison(PaperComparison(
            claim=f"{name}: reduction overhead grows with cores (fored > 0)",
            paper_value=f"{100 * TABLE2[name].fored_rel:.0f}%",
            measured_value=f"{100 * ep.fored_rel:.0f}%",
            qualitative=True, claim_holds=ep.fored_rel > 0.05,
        ))
    report.add_comparison(PaperComparison(
        claim="kmeans fcon/fred split near 57/43",
        paper_value=57.0,
        measured_value=round(100 * extracted["kmeans"].fcon_share, 1),
        tolerance=0.25,
    ))
    report.add_comparison(PaperComparison(
        claim="hop reduction growth superlinear (alpha > 1)",
        paper_value="155% rel. growth",
        measured_value=f"alpha={extracted['hop'].growth_alpha:.2f}",
        qualitative=True, claim_holds=extracted["hop"].growth_alpha > 1.0,
    ))
    report.add_note(
        f"simulated at scale={scale} of the paper's dataset sizes; absolute "
        "serial percentages shift with scale, shares and slopes do not "
        "(cf. Table IV)."
    )
    report.raw["extracted"] = extracted
    return report


SPEC = ExperimentSpec("table2", run, stages=(Stage("sim-sweep", declare_units),))
