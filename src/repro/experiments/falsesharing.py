"""False sharing: why the privatised partials must be line-padded.

The paper's workloads privatise their partial results per thread; a naive
implementation packs those buffers contiguously, so buffer boundaries land
inside shared cache lines and neighbouring threads' *independent* updates
ping-pong the line.  This experiment builds both layouts directly as
traces and measures the gap on the simulator — the mechanical footnote to
the merging-phase story (the partials must be padded for the parallel
phase to be truly parallel).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport, PaperComparison
from repro.pipeline import ExperimentSpec, Stage, resolve_units, sim_program_unit
from repro.simx import Compute, MachineConfig, Store, ThreadTrace, TraceProgram
from repro.util.tables import TextTable

__all__ = ["run", "declare_units", "SPEC"]

_LINE = 64


def _accumulation_program(
    n_threads: int, updates: int, padded: bool
) -> TraceProgram:
    """Each thread repeatedly updates its own accumulator.

    Padded: each accumulator on its own cache line.  Packed: accumulators
    are 8-byte slots in one contiguous array, 8 per line — distinct
    threads share lines.
    """
    base = 0x1000_0000
    threads = []
    for tid in range(n_threads):
        addr = base + (tid * _LINE if padded else tid * 8)
        ops = []
        for _ in range(updates):
            ops.append(Store(addr))
            ops.append(Compute(8))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram(
        name=f"accum-{'padded' if padded else 'packed'}", threads=threads
    )


def declare_units(n_threads: int = 8, updates: int = 300) -> list:
    """Both layouts' simulator runs as engine work units."""
    cfg = MachineConfig.baseline(n_cores=n_threads)
    return [
        sim_program_unit(
            _accumulation_program,
            {"n_threads": n_threads, "updates": updates, "padded": padded},
            cfg,
            label=f"accum-{'padded' if padded else 'packed'}",
        )
        for padded in (True, False)
    ]


def run(n_threads: int = 8, updates: int = 300) -> ExperimentReport:
    """Measure packed vs padded per-thread accumulators."""
    report = ExperimentReport(
        "ext-falsesharing", "False sharing in packed per-thread accumulators"
    )
    units = declare_units(n_threads, updates)
    payloads = resolve_units(units)
    results = {
        ("padded" if padded else "packed"): payloads[u.key]
        for padded, u in zip((True, False), units)
    }
    t = TextTable(
        title=f"{n_threads} threads x {updates} private accumulator updates",
        columns=["layout", "cycles", "invalidations", "cache-to-cache"],
    )
    for name, res in results.items():
        t.add_row([
            name, res["total_cycles"],
            res["invalidations"], res["cache_to_cache"],
        ])
    report.add_table(t)
    slowdown = results["packed"]["total_cycles"] / results["padded"]["total_cycles"]
    report.add_comparison(PaperComparison(
        claim="packed accumulators ping-pong: large slowdown vs padded",
        paper_value="(mechanical expectation: >2x)",
        measured_value=f"{slowdown:.1f}x slower",
        qualitative=True, claim_holds=slowdown > 2.0,
    ))
    report.add_comparison(PaperComparison(
        claim="padded layout causes no invalidation traffic at all",
        paper_value="0 invalidations",
        measured_value=str(results["padded"]["invalidations"]),
        qualitative=True,
        claim_holds=results["padded"]["invalidations"] == 0,
    ))
    report.raw["results"] = results
    return report


SPEC = ExperimentSpec(
    "ext-falsesharing", run, stages=(Stage("sim-program", declare_units),)
)
