"""Scheduling questions the paper could not ask.

The paper's runs (and ``simx``'s default ``pinned`` dispatch) are strictly
one-thread-per-core, so merging-phase behaviour under an *OS scheduler* —
oversubscription, quantum preemption, big-core placement — was outside its
reach.  With the pluggable scheduler layer (:mod:`repro.simx.sched`) these
become ordinary trace experiments:

``ext-oversubscription-sweep``
    Fixed total work partitioned over 1×..4× as many threads as cores on a
    round-robin machine.  More threads add merge partials and context
    switches but no parallelism, so the knee the paper measures moves the
    wrong way.
``ext-acmp-merge-policy``
    The same merge on an asymmetric CMP under the three big-core ownership
    policies: who runs the reduction decides how much of the sqrt-area
    speedup it sees.
``ext-priority-inversion-reduction``
    A locked merge on an oversubscribed machine across a quantum sweep:
    with no priorities, a lock-holder woken by the handover re-enters the
    FIFO run queue behind background compute and every other reducer
    stalls behind it — priority inversion on the merge path, measured in
    cycles, and it grows with the quantum (longer spinner slices before
    the holder reclaims a core).

All simulator work is declared as ``sim-program`` units, so the specs
compose with ``runall``, journaling, ``--resume``, distributed workers and
serve exactly like every other experiment.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.report import ExperimentReport, PaperComparison
from repro.pipeline import ExperimentSpec, Stage, resolve_units, sim_program_unit
from repro.simx import (
    Barrier,
    Compute,
    Load,
    Lock,
    MachineConfig,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
    Unlock,
)
from repro.util.tables import TextTable

__all__ = [
    "run_oversubscription",
    "run_acmp_policy",
    "run_priority_inversion",
    "declare_units_oversubscription",
    "declare_units_acmp_policy",
    "declare_units_priority_inversion",
    "SPECS",
]

_LINE = 64
_SHARED = 0x3000_0000
_PRIVATE = 0x2000_0000


# ── trace builders (module-level: units carry them by reference) ──────────


def _merging_program(
    n_threads: int, total_updates: int, merge_elements: int
) -> TraceProgram:
    """Fixed total work split over ``n_threads``, privatised partials,
    master merge — one partial per thread, so the merge grows with the
    thread count while the parallel slice shrinks."""
    upd = max(1, total_updates // n_threads)
    merge_lines = max(1, merge_elements // 8)
    threads = []
    for tid in range(n_threads):
        own = _PRIVATE + tid * 0x1_0000
        ops = [PhaseBegin("parallel"), Compute(upd * 10)]
        for i in range(max(1, upd // 8)):
            ops.append(Store(own + (i % merge_lines) * _LINE))
        ops.append(Compute(upd * 2))
        ops.append(PhaseEnd("parallel"))
        if n_threads > 1:
            ops.append(Barrier(0))
        if tid == 0:
            ops.append(PhaseBegin("reduction"))
            for src in range(n_threads):
                for i in range(merge_lines):
                    ops.append(Load(_PRIVATE + src * 0x1_0000 + i * _LINE))
                ops.append(Compute(merge_elements * 2))
            ops.append(PhaseEnd("reduction"))
        if n_threads > 1:
            ops.append(Barrier(1))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("merging", threads)


def _acmp_merge_program(
    n_threads: int, work: int, merge_elements: int
) -> TraceProgram:
    """Parallel work, then the *last* thread merges while the others keep
    computing.  The master enters its reduction phase *before* the barrier,
    so on release it re-enters the run queue as a serial-phase thread —
    the dispatch decision the ACMP policies differ on.  Making the master
    the last tid keeps ``first-come`` from handing it the big core (core
    0) by initial-placement luck."""
    master = n_threads - 1
    merge_lines = max(1, merge_elements // 8)
    threads = []
    for tid in range(n_threads):
        own = _PRIVATE + tid * 0x1_0000
        ops = [PhaseBegin("parallel"), Compute(work * 8)]
        for i in range(max(1, work // 8)):
            ops.append(Store(own + (i % merge_lines) * _LINE))
        ops.append(PhaseEnd("parallel"))
        if tid == master:
            ops.append(PhaseBegin("reduction"))
            ops.append(Barrier(0))
            for src in range(n_threads):
                for i in range(merge_lines):
                    ops.append(Load(_PRIVATE + src * 0x1_0000 + i * _LINE))
                ops.append(Compute(merge_elements * 4))
            ops.append(PhaseEnd("reduction"))
        else:
            ops.append(Barrier(0))
            # background work contends for cores during the merge
            ops.append(PhaseBegin("parallel"))
            ops.append(Compute(work * 6))
            ops.append(PhaseEnd("parallel"))
        ops.append(Barrier(1))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("acmp-merge", threads)


def _locked_merge_program(
    n_reducers: int, n_spinners: int, updates: int, merge_elements: int
) -> TraceProgram:
    """Reducers merge into a shared accumulator behind one lock; spinners
    are compute-bound background threads chopped into many small ops (each
    op boundary is a preemption opportunity).  Oversubscribed, a reducer
    that blocks on the lock and is later woken by the handover re-queues
    behind the spinners — while still owning the lock."""
    merge_lines = max(1, merge_elements // 8)
    threads = []
    for tid in range(n_reducers):
        ops = [PhaseBegin("parallel"), Compute(updates * 8)]
        for i in range(max(1, updates // 8)):
            ops.append(Store(_PRIVATE + tid * 0x1_0000 + (i % 8) * _LINE))
        ops.append(PhaseEnd("parallel"))
        ops.append(PhaseBegin("reduction"))
        ops.append(Lock(0))
        for i in range(merge_lines):
            ops.append(Load(_SHARED + i * _LINE))
            ops.append(Compute(merge_elements // merge_lines * 2))
            ops.append(Store(_SHARED + i * _LINE))
        ops.append(Unlock(0))
        ops.append(PhaseEnd("reduction"))
        threads.append(ThreadTrace(tid, ops))
    for s in range(n_spinners):
        tid = n_reducers + s
        ops = [PhaseBegin("parallel")]
        for _ in range(max(1, updates // 4)):
            ops.append(Compute(64))
        ops.append(PhaseEnd("parallel"))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("locked-merge", threads)


# ── ext-oversubscription-sweep ────────────────────────────────────────────


def _oversub_config(base_cores: int, quantum: int, migration_cost: int) -> MachineConfig:
    return replace(
        MachineConfig.baseline(n_cores=base_cores),
        scheduler="round-robin",
        quantum=quantum,
        migration_cost=migration_cost,
    )


def declare_units_oversubscription(
    ratios: tuple = (1, 2, 3, 4),
    base_cores: int = 4,
    quantum: int = 1200,
    migration_cost: int = 30,
    total_updates: int = 4800,
    merge_elements: int = 64,
) -> list:
    """One round-robin run per threads/cores ratio, fixed total work."""
    cfg = _oversub_config(base_cores, quantum, migration_cost)
    return [
        sim_program_unit(
            _merging_program,
            {
                "n_threads": base_cores * ratio,
                "total_updates": total_updates,
                "merge_elements": merge_elements,
            },
            cfg,
            label=f"oversub-{ratio}x",
        )
        for ratio in ratios
    ]


def run_oversubscription(
    ratios: tuple = (1, 2, 3, 4),
    base_cores: int = 4,
    quantum: int = 1200,
    migration_cost: int = 30,
    total_updates: int = 4800,
    merge_elements: int = 64,
) -> ExperimentReport:
    """Merging-phase behaviour when threads outnumber cores 1x..4x."""
    report = ExperimentReport(
        "ext-oversubscription-sweep",
        "Fixed work on a round-robin scheduler, threads/cores 1x..4x",
    )
    units = declare_units_oversubscription(
        ratios, base_cores, quantum, migration_cost, total_updates,
        merge_elements,
    )
    payloads = resolve_units(units)
    rows = [payloads[u.key] for u in units]
    t = TextTable(
        title=(
            f"{total_updates} updates on {base_cores} cores, "
            f"quantum={quantum}"
        ),
        columns=[
            "threads/cores", "threads", "cycles", "vs 1x", "merge span",
            "preempt", "migrate", "queue wait",
        ],
    )
    base_cycles = rows[0]["total_cycles"]
    for ratio, row in zip(ratios, rows):
        t.add_row([
            f"{ratio}x",
            base_cores * ratio,
            row["total_cycles"],
            f"{row['total_cycles'] / base_cycles:.2f}x",
            row["reduction_span_cycles"],
            row["preemptions"],
            row["migrations"],
            row["involuntary_wait_cycles"],
        ])
    report.add_table(t)
    worst = max(rows, key=lambda r: r["total_cycles"])
    report.add_comparison(PaperComparison(
        claim="oversubscription never beats one thread per core on fixed work",
        paper_value="outside the paper's one-thread-per-core design space",
        measured_value=(
            f"1x: {base_cycles:,} cycles; worst ratio: "
            f"{worst['total_cycles']:,}"
        ),
        qualitative=True,
        claim_holds=all(r["total_cycles"] >= base_cycles for r in rows),
    ))
    merge_growth = (
        rows[-1]["reduction_span_cycles"]
        / max(1, rows[0]["reduction_span_cycles"])
    )
    report.add_comparison(PaperComparison(
        claim="the merge grows with the thread count, not the core count",
        paper_value="merge work is x*p (Algorithm 1)",
        measured_value=f"{merge_growth:.1f}x merge span at {ratios[-1]}x threads",
        qualitative=True,
        claim_holds=merge_growth > 1.5,
    ))
    report.raw.update(
        ratios=list(ratios),
        cycles=[r["total_cycles"] for r in rows],
        preemptions=[r["preemptions"] for r in rows],
        involuntary_wait=[r["involuntary_wait_cycles"] for r in rows],
    )
    return report


# ── ext-acmp-merge-policy ─────────────────────────────────────────────────

_POLICIES = ("first-come", "reduction-owns-big", "migrate-on-phase")


def _acmp_config(
    rl: int, n_small: int, policy: str, quantum: int, migration_cost: int
) -> MachineConfig:
    return replace(
        MachineConfig.asymmetric(rl=rl, n_small=n_small),
        scheduler="acmp",
        acmp_policy=policy,
        quantum=quantum,
        migration_cost=migration_cost,
    )


def declare_units_acmp_policy(
    rl: int = 4,
    n_small: int = 3,
    work: int = 1500,
    merge_elements: int = 64,
    quantum: int = 2000,
    migration_cost: int = 25,
) -> list:
    """The same merge program under each big-core ownership policy."""
    n_threads = n_small + 1
    return [
        sim_program_unit(
            _acmp_merge_program,
            {
                "n_threads": n_threads,
                "work": work,
                "merge_elements": merge_elements,
            },
            _acmp_config(rl, n_small, policy, quantum, migration_cost),
            label=f"acmp-{policy}",
        )
        for policy in _POLICIES
    ]


def run_acmp_policy(
    rl: int = 4,
    n_small: int = 3,
    work: int = 1500,
    merge_elements: int = 64,
    quantum: int = 2000,
    migration_cost: int = 25,
) -> ExperimentReport:
    """Who gets the big core during the merge on an ACMP?"""
    report = ExperimentReport(
        "ext-acmp-merge-policy",
        f"Big-core ownership during the merge (rl={rl}, {n_small} small cores)",
    )
    units = declare_units_acmp_policy(
        rl, n_small, work, merge_elements, quantum, migration_cost
    )
    payloads = resolve_units(units)
    rows = dict(zip(_POLICIES, (payloads[u.key] for u in units)))
    t = TextTable(
        title=f"merge thread = last tid; big core = core 0 ({rl}-BCE)",
        columns=[
            "policy", "cycles", "merge busy", "merge span", "preempt",
            "migrate",
        ],
    )
    for policy in _POLICIES:
        row = rows[policy]
        t.add_row([
            policy,
            row["total_cycles"],
            row["reduction_cycles"],
            row["reduction_span_cycles"],
            row["preemptions"],
            row["migrations"],
        ])
    report.add_table(t)
    fc = rows["first-come"]
    best_aware = min(
        rows["reduction-owns-big"]["reduction_cycles"],
        rows["migrate-on-phase"]["reduction_cycles"],
    )
    report.add_comparison(PaperComparison(
        claim="merge-aware policies execute the reduction on the big core",
        paper_value="the ACMP rationale: serial sections deserve the big core",
        measured_value=(
            f"merge busy {best_aware:,} cycles (aware) vs "
            f"{fc['reduction_cycles']:,} (first-come leaves it on a "
            "small core)"
        ),
        qualitative=True,
        claim_holds=best_aware < fc["reduction_cycles"],
    ))
    report.add_comparison(PaperComparison(
        claim="migrate-on-phase pays for the big core with migrations",
        paper_value="migration is not free (configured cost per move)",
        measured_value=(
            f"{rows['migrate-on-phase']['migrations']} migrations vs "
            f"{fc['migrations']} under first-come"
        ),
        qualitative=True,
        claim_holds=rows["migrate-on-phase"]["migrations"] > fc["migrations"],
    ))
    report.raw.update({p: rows[p] for p in _POLICIES})
    return report


# ── ext-priority-inversion-reduction ──────────────────────────────────────


def _pi_config(cores: int, quantum: int) -> MachineConfig:
    return replace(
        MachineConfig.baseline(n_cores=cores),
        scheduler="round-robin",
        quantum=quantum,
    )


def declare_units_priority_inversion(
    quanta: tuple = (150, 600, 4800),
    cores: int = 2,
    n_reducers: int = 3,
    n_spinners: int = 3,
    updates: int = 400,
    merge_elements: int = 64,
) -> list:
    """The same locked merge under each quantum."""
    return [
        sim_program_unit(
            _locked_merge_program,
            {
                "n_reducers": n_reducers,
                "n_spinners": n_spinners,
                "updates": updates,
                "merge_elements": merge_elements,
            },
            _pi_config(cores, quantum),
            label=f"pi-quantum-{quantum}",
        )
        for quantum in quanta
    ]


def run_priority_inversion(
    quanta: tuple = (150, 600, 4800),
    cores: int = 2,
    n_reducers: int = 3,
    n_spinners: int = 3,
    updates: int = 400,
    merge_elements: int = 64,
) -> ExperimentReport:
    """A preempted lock-holder stalls the whole reduction."""
    report = ExperimentReport(
        "ext-priority-inversion-reduction",
        "Locked merge vs quantum on an oversubscribed round-robin machine",
    )
    units = declare_units_priority_inversion(
        quanta, cores, n_reducers, n_spinners, updates, merge_elements
    )
    payloads = resolve_units(units)
    rows = [payloads[u.key] for u in units]
    t = TextTable(
        title=(
            f"{n_reducers} reducers + {n_spinners} spinners on {cores} cores"
        ),
        columns=[
            "quantum", "cycles", "merge wait", "preempt", "queue wait",
        ],
    )
    for quantum, row in zip(quanta, rows):
        t.add_row([
            quantum,
            row["total_cycles"],
            row["reduction_wait_cycles"],
            row["preemptions"],
            row["involuntary_wait_cycles"],
        ])
    report.add_table(t)
    small, large = rows[0], rows[-1]
    report.add_comparison(PaperComparison(
        claim="without priorities the merge inherits the spinners' "
              "schedule: a woken lock-holder re-queues FIFO behind "
              "background threads, so the merge stall grows with the "
              "quantum",
        paper_value="priority inversion on the merge path",
        measured_value=(
            f"{large['reduction_wait_cycles']:,} merge-wait cycles at "
            f"quantum={quanta[-1]} vs {small['reduction_wait_cycles']:,} at "
            f"quantum={quanta[0]}"
        ),
        qualitative=True,
        claim_holds=(
            large["reduction_wait_cycles"] > small["reduction_wait_cycles"]
        ),
    ))
    report.add_comparison(PaperComparison(
        claim="larger quanta preempt less",
        paper_value="quantum expiry is the only involuntary switch here",
        measured_value=(
            f"{small['preemptions']} -> {large['preemptions']} preemptions"
        ),
        qualitative=True,
        claim_holds=small["preemptions"] > large["preemptions"],
    ))
    report.raw.update(
        quanta=list(quanta),
        cycles=[r["total_cycles"] for r in rows],
        reduction_wait=[r["reduction_wait_cycles"] for r in rows],
        preemptions=[r["preemptions"] for r in rows],
    )
    return report


SPECS = (
    ExperimentSpec(
        "ext-oversubscription-sweep",
        run_oversubscription,
        stages=(Stage("sim-program", declare_units_oversubscription),),
    ),
    ExperimentSpec(
        "ext-acmp-merge-policy",
        run_acmp_policy,
        stages=(Stage("sim-program", declare_units_acmp_policy),),
    ),
    ExperimentSpec(
        "ext-priority-inversion-reduction",
        run_priority_inversion,
        stages=(Stage("sim-program", declare_units_priority_inversion),),
    ),
)
