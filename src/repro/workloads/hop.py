"""HOP density-based clustering (MineBench hop).

HOP [Eisenstein & Hut 1998] groups N-body particles by density:

1. **tree** — build a spatial search structure (the paper notes this
   parallel kernel "does not scale up to 16 cores": the top-level splits
   are inherently sequential, modelled here as a non-partitionable work
   term per thread);
2. **density** — smoothed local density from each particle's k nearest
   neighbours (data-parallel over particles);
3. **hop** — each particle hops to its densest neighbour, chains compress
   to a density maximum; particles reaching the same maximum form a group
   (data-parallel pointer chasing);
4. **merge** — per-thread group tables and cross-partition hop edges are
   combined on the master.  The merged table grows with the thread count
   (one table per thread), every probe walks a global table that has
   already absorbed the earlier threads' entries, and the data read is
   scattered remote memory — together the memory-bound, superlinear
   behaviour behind hop's fored = 155% in Table II.

Particles are domain-decomposed: sorted by position (slab partitioning
along the first axis, as N-body codes do) so each thread owns a spatially
coherent region and cross-partition edges scale with the number of slab
boundaries rather than saturating immediately.

The numerics use :class:`scipy.spatial.cKDTree` for neighbour queries; the
grouping result is independent of the thread count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.util.validation import check_positive_int
from repro.workloads.base import (
    PHASE_INIT,
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    PHASE_SERIAL,
    ClusteringWorkloadBase,
    PhaseWork,
    WorkloadExecution,
)
from repro.workloads.datasets import ParticleDataset

__all__ = ["HopWorkload"]

_TREE_INSTR_PER_LEVEL = 8     # partition/compare per particle per level
_DENSITY_INSTR_PER_NEIGH = 12 # kernel-weighted accumulate per neighbour
_QUERY_INSTR_PER_LEVEL = 6    # kd-tree descent per level
_HOP_INSTR_PER_STEP = 5       # follow-densest-neighbour step
_MERGE_INSTR_PER_ENTRY = 6    # hash probe + union per merged table entry
_MERGE_PROBE_SCALE = 3        # extra probe cost per already-merged table
_EDGE_INSTR = 8               # cross-partition edge resolution


@dataclass
class HopWorkload(ClusteringWorkloadBase):
    """HOP over a :class:`ParticleDataset`.

    Parameters
    ----------
    dataset:
        Particle positions and masses.
    n_neighbors:
        k for the density estimate and hop candidate set (MineBench
        default region: 16–64; we default lower to keep test datasets
        fast).
    density_threshold_quantile:
        Particles below this density quantile stay ungrouped (background).
    """

    dataset: ParticleDataset
    n_neighbors: int = 16
    density_threshold_quantile: float = 0.2

    name = "hop"

    def __post_init__(self) -> None:
        check_positive_int(self.n_neighbors, "n_neighbors")
        if not (0.0 <= self.density_threshold_quantile < 1.0):
            raise ValueError(
                "density_threshold_quantile must be in [0, 1), got "
                f"{self.density_threshold_quantile}"
            )
        if self.n_neighbors >= self.dataset.n_particles:
            raise ValueError(
                f"n_neighbors {self.n_neighbors} must be below particle count "
                f"{self.dataset.n_particles}"
            )

    # ── execution ─────────────────────────────────────────────────────────
    def execute(self, n_threads: int) -> WorkloadExecution:
        """Run HOP with ``n_threads`` logical threads (single pass — HOP is
        not iterative like the center-based methods)."""
        check_positive_int(n_threads, "n_threads")
        ds = self.dataset
        n = ds.n_particles
        if n_threads > n:
            raise ValueError(f"more threads ({n_threads}) than particles ({n})")
        k = self.n_neighbors
        levels = max(1, int(np.ceil(np.log2(n))))
        execution = WorkloadExecution(
            workload=self.name, n_threads=n_threads, n_iterations=1
        )
        serial_only = lambda v: tuple(  # noqa: E731
            int(v) if t == 0 else 0 for t in range(n_threads)
        )
        counts = self.per_thread_counts(n, n_threads)
        slices = self.partition(n, n_threads)
        # domain decomposition: slab-partition along the first axis so each
        # thread owns a spatially coherent region (cross-partition edges
        # then scale with the slab boundaries, as on a real N-body code)
        order = np.argsort(ds.positions[:, 0], kind="stable")

        # ── init (serial): bounding box, allocation ──────────────────────
        execution.add(PhaseWork(
            phase=PHASE_INIT,
            per_thread_instructions=serial_only(n // 8 + 60),
            per_thread_reads=serial_only(n // 8),
            per_thread_writes=serial_only(20),
        ))

        # ── tree build (parallel, imperfectly scalable) ──────────────────
        # each thread builds its subtree ((n/p)·levels work) but the top
        # log2(p) split levels scan the whole input on every participating
        # thread — the non-scaling term that caps hop's speedup (~13.5@16).
        tree = cKDTree(ds.positions)
        top_levels = max(1, int(np.ceil(np.log2(n_threads)))) if n_threads > 1 else 0
        tree_instr = tuple(
            int(c) * levels * _TREE_INSTR_PER_LEVEL
            + (n // max(n_threads, 1)) * top_levels * _TREE_INSTR_PER_LEVEL
            for c in counts
        )
        execution.add(PhaseWork(
            phase=PHASE_PARALLEL,
            per_thread_instructions=tree_instr,
            per_thread_reads=tuple(int(c) * levels for c in counts),
            per_thread_writes=tuple(int(c) * 2 for c in counts),
        ))

        # ── density (parallel) ────────────────────────────────────────────
        dists, neighbors = tree.query(ds.positions, k=k + 1)
        # smoothed density: inverse-distance-weighted neighbour masses
        eps = 1e-9
        weights = 1.0 / (dists[:, 1:] ** 2 + eps)
        density = (weights * ds.masses[neighbors[:, 1:]]).sum(axis=1)
        execution.add(PhaseWork(
            phase=PHASE_PARALLEL,
            per_thread_instructions=tuple(
                int(c) * (k * _DENSITY_INSTR_PER_NEIGH + levels * _QUERY_INSTR_PER_LEVEL)
                for c in counts
            ),
            per_thread_reads=tuple(int(c) * k for c in counts),
            per_thread_writes=tuple(int(c) for c in counts),
        ))

        # ── hop (parallel pointer chasing) ────────────────────────────────
        candidates = neighbors  # includes self in column 0
        cand_density = density[candidates]
        next_hop = candidates[np.arange(n), np.argmax(cand_density, axis=1)]
        # particles denser than all neighbours point to themselves (maxima)
        roots = next_hop.copy()
        total_hops = n  # every particle does at least its own lookup
        changed = True
        while changed:
            compressed = roots[roots]
            changed = bool(np.any(compressed != roots))
            total_hops += int(np.count_nonzero(compressed != roots))
            roots = compressed
        execution.add(PhaseWork(
            phase=PHASE_PARALLEL,
            per_thread_instructions=tuple(
                int(c) * (total_hops // n + 1) * _HOP_INSTR_PER_STEP for c in counts
            ),
            per_thread_reads=tuple(int(c) * 2 for c in counts),
            per_thread_writes=tuple(int(c) for c in counts),
        ))

        # background suppression: low-density particles stay ungrouped
        threshold = float(np.quantile(density, self.density_threshold_quantile))
        grouped_mask = density >= threshold

        # ── merge (serial reduction on the master) ────────────────────────
        # per-thread local group tables: unique roots within each slab
        local_group_counts = []
        for sl in slices:
            members = order[sl]
            r = roots[members][grouped_mask[members]]
            local_group_counts.append(int(np.unique(r).size))
        table_entries = int(sum(local_group_counts))
        # cross-partition hop edges the master must resolve (slab owners)
        owner = np.empty(n, dtype=np.int64)
        for t, sl in enumerate(slices):
            owner[order[sl.start:sl.stop]] = t
        cross_edges = int(np.count_nonzero(owner != owner[next_hop]))
        # probe cost grows with the already-accumulated global table: the
        # t-th table's entries probe a structure holding ~t earlier tables —
        # the superlinear, memory-bound component the paper observes.
        probe_instr = sum(
            g * (_MERGE_INSTR_PER_ENTRY + _MERGE_PROBE_SCALE * t)
            for t, g in enumerate(local_group_counts)
        )
        merge_instr = probe_instr + cross_edges * _EDGE_INSTR
        execution.add(PhaseWork(
            phase=PHASE_REDUCTION,
            per_thread_instructions=serial_only(merge_instr),
            per_thread_reads=serial_only(table_entries + cross_edges),
            per_thread_writes=serial_only(table_entries),
            shared_reads=serial_only(
                # entries contributed by remote threads are coherence misses
                table_entries - (local_group_counts[0] if local_group_counts else 0)
                + cross_edges
            ),
        ))

        # ── serial: final group renumbering and stats ─────────────────────
        unique_roots, group_of = np.unique(roots[grouped_mask], return_inverse=True)
        groups = np.full(n, -1, dtype=np.int64)
        groups[grouped_mask] = group_of
        execution.add(PhaseWork(
            phase=PHASE_SERIAL,
            per_thread_instructions=serial_only(int(unique_roots.size) * 4 + 40),
            per_thread_reads=serial_only(int(unique_roots.size)),
            per_thread_writes=serial_only(int(unique_roots.size)),
        ))

        execution.outputs = {
            "groups": groups,
            "n_groups": int(unique_roots.size),
            "density": density,
            "roots": roots,
            "cross_edges": cross_edges,
            "table_entries": table_entries,
        }
        return execution
