"""Parameter extraction: from phase timings to Table II fractions.

The paper's methodology (Section V.A):

* the **serial fraction** is total single-core time in serial sections
  (init + reduction + serial update) over total single-core time;
* **fcon** is the serial-section share *excluding* reduction;
* **fcred** is the single-core reduction time;
* **fored** is "the relative increase in reduction operation time over
  fcred when using multiple cores" — the slope of the reduction time as a
  function of core count, normalised by fcred;
* a superlinear exponent (hop) is detected by fitting
  ``reduction(p) = fcred · (1 + fored · (p−1)^alpha)`` in log-log space.

:class:`PhaseBreakdown` is the common currency: both the simulator
(:func:`breakdown_from_simulation`) and the hardware executor produce it,
so the same extractor validates both (Figs 2(b) and 2(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.params import MeasuredParams
from repro.workloads.base import PHASE_INIT, PHASE_PARALLEL, PHASE_REDUCTION, PHASE_SERIAL

__all__ = [
    "PhaseBreakdown",
    "breakdown_from_simulation",
    "ExtractedParams",
    "extract_parameters",
    "serial_growth_curve",
    "speedup_curve",
]


@dataclass(frozen=True)
class PhaseBreakdown:
    """Measured time (cycles or seconds) per phase for one run.

    Serial-phase entries are the master thread's busy time; ``parallel`` is
    the wall-clock extent of the parallel sections; ``total`` the whole
    run.
    """

    n_threads: int
    total: float
    init: float
    parallel: float
    reduction: float
    serial: float

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {self.n_threads}")
        for name in ("total", "init", "parallel", "reduction", "serial"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def serial_sections(self) -> float:
        """Total time in serial sections (init + merge + update)."""
        return self.init + self.reduction + self.serial

    @property
    def constant_serial(self) -> float:
        """Serial time excluding the reduction (the fcon numerator)."""
        return self.init + self.serial


def breakdown_from_simulation(result) -> PhaseBreakdown:
    """Build a :class:`PhaseBreakdown` from a
    :class:`~repro.simx.machine.SimulationResult`.

    Serial phases run on thread 0 (the master); their busy cycles are
    thread 0's.  The parallel phase time is the per-thread maximum (the
    wall-clock critical path between barriers).
    """
    stats = result.phase_stats
    per_thread_parallel = stats.merge_thread_busy(PHASE_PARALLEL)
    parallel_wall = max(per_thread_parallel.values(), default=0)
    return PhaseBreakdown(
        n_threads=result.n_threads,
        total=float(result.total_cycles),
        init=float(stats.busy_cycles(PHASE_INIT, 0)),
        parallel=float(parallel_wall),
        reduction=float(stats.busy_cycles(PHASE_REDUCTION, 0)),
        serial=float(stats.busy_cycles(PHASE_SERIAL, 0)),
    )


@dataclass(frozen=True)
class ExtractedParams:
    """Table II-style parameters recovered from measurements."""

    name: str
    serial_pct: float
    fcon_share: float
    fred_share: float
    fored_rel: float
    growth_alpha: float

    def to_measured_params(self, critical_pct: float = 0.0) -> MeasuredParams:
        """Convert to the model-layer record (critical sections excluded
        from the analysis, as in the paper)."""
        return MeasuredParams(
            name=self.name,
            serial_pct=self.serial_pct,
            critical_pct=critical_pct,
            fored_rel=self.fored_rel,
            fred_share=self.fred_share,
            fcon_share=self.fcon_share,
            growth_alpha=self.growth_alpha,
        )


def extract_parameters(
    breakdowns: Mapping[int, PhaseBreakdown], name: str = "app"
) -> ExtractedParams:
    """Recover (f, fcon, fcred, fored, alpha) from per-core-count timings.

    Requires the single-core breakdown plus at least one multi-core point;
    more points sharpen the growth fit.
    """
    if 1 not in breakdowns:
        raise ValueError("need the single-core (n_threads=1) breakdown")
    multi = sorted(p for p in breakdowns if p > 1)
    if not multi:
        raise ValueError("need at least one multi-core breakdown to fit growth")
    base = breakdowns[1]
    if base.total <= 0:
        raise ValueError("single-core total time must be positive")
    serial_1 = base.serial_sections
    if serial_1 <= 0:
        raise ValueError("single-core serial time must be positive")

    serial_pct = 100.0 * serial_1 / base.total
    fcon_share = base.constant_serial / serial_1
    fred_share = base.reduction / serial_1

    fcred = base.reduction
    if fcred <= 0:
        # no reduction at all: degenerate but legal (pure Amdahl app)
        return ExtractedParams(
            name=name, serial_pct=serial_pct, fcon_share=1.0,
            fred_share=0.0, fored_rel=0.0, growth_alpha=1.0,
        )

    # relative growth points: g(p) = (reduction(p) - fcred) / fcred
    ps = np.array(multi, dtype=np.float64)
    growth = np.array(
        [(breakdowns[p].reduction - fcred) / fcred for p in multi], dtype=np.float64
    )
    growth = np.maximum(growth, 0.0)
    positive = growth > 0
    if not positive.any():
        return ExtractedParams(
            name=name, serial_pct=serial_pct, fcon_share=fcon_share,
            fred_share=fred_share, fored_rel=0.0, growth_alpha=1.0,
        )
    # fit g(p) = fored · (p−1)^alpha in log space
    log_pm1 = np.log(ps[positive] - 1.0 + 1e-12)
    log_g = np.log(growth[positive])
    if positive.sum() >= 2 and np.ptp(log_pm1) > 1e-9:
        alpha, log_fored = np.polyfit(log_pm1, log_g, 1)
        fored = float(np.exp(log_fored))
        alpha = float(alpha)
    else:
        p0 = float(ps[positive][0])
        fored = float(growth[positive][0] / (p0 - 1.0))
        alpha = 1.0
    return ExtractedParams(
        name=name,
        serial_pct=serial_pct,
        fcon_share=fcon_share,
        fred_share=fred_share,
        fored_rel=fored,
        growth_alpha=alpha,
    )


def serial_growth_curve(breakdowns: Mapping[int, PhaseBreakdown]) -> dict[int, float]:
    """Fig 2(b)/(c): serial-section time per core count, normalised to the
    single-core serial-section time."""
    if 1 not in breakdowns:
        raise ValueError("need the single-core breakdown for normalisation")
    base = breakdowns[1].serial_sections
    if base <= 0:
        raise ValueError("single-core serial time must be positive")
    return {p: b.serial_sections / base for p, b in sorted(breakdowns.items())}


def speedup_curve(breakdowns: Mapping[int, PhaseBreakdown]) -> dict[int, float]:
    """Fig 2(a): speedup per core count relative to the single-core run."""
    if 1 not in breakdowns:
        raise ValueError("need the single-core breakdown for normalisation")
    base = breakdowns[1].total
    if base <= 0:
        raise ValueError("single-core total time must be positive")
    return {p: base / b.total for p, b in sorted(breakdowns.items())}
