"""MineBench-style clustering workloads with instrumented phase structure.

The paper studies the three multithreaded clustering benchmarks of
MineBench — **kmeans**, **fuzzy** (fuzzy c-means) and **hop** — because they
have tiny serial sections and a per-iteration *merging phase* that
accumulates per-thread partial results.  This package re-implements them
from scratch with the same parallel structure:

* the point/particle work is partitioned across threads (parallel phase);
* each thread accumulates privatised partial results;
* a merging (reduction) phase combines one partial per thread — the
  inherently serial component whose cost grows with the thread count;
* a small constant serial phase updates global state and checks
  convergence.

Each workload runs numerically (numpy) *and* emits a deterministic
per-phase work accounting (instruction and memory-access counts), from
which :mod:`repro.workloads.tracegen` builds simulator traces and
:mod:`repro.hardware` builds modelled wall-clock times.
"""

from repro.workloads.base import (
    PHASE_INIT,
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    PHASE_SERIAL,
    PhaseWork,
    WorkloadExecution,
)
from repro.workloads.datasets import (
    ClusteringDataset,
    ParticleDataset,
    TABLE4_DATASETS,
    make_blobs,
    make_particles,
)
from repro.workloads.fuzzy import FuzzyCMeansWorkload
from repro.workloads.histogram import HistogramWorkload
from repro.workloads.hop import HopWorkload
from repro.workloads.instrument import PhaseBreakdown, extract_parameters
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.reduction import (
    parallel_reduce,
    serial_reduce,
    tree_reduce,
)

__all__ = [
    "PHASE_INIT",
    "PHASE_PARALLEL",
    "PHASE_REDUCTION",
    "PHASE_SERIAL",
    "PhaseWork",
    "WorkloadExecution",
    "ClusteringDataset",
    "ParticleDataset",
    "TABLE4_DATASETS",
    "make_blobs",
    "make_particles",
    "KMeansWorkload",
    "FuzzyCMeansWorkload",
    "HopWorkload",
    "HistogramWorkload",
    "serial_reduce",
    "tree_reduce",
    "parallel_reduce",
    "PhaseBreakdown",
    "extract_parameters",
]
