"""Fuzzy c-means clustering with a merging phase (MineBench fuzzym).

Fuzzy c-means generalises k-means with soft memberships: point *i* belongs
to center *j* with weight ``u_ij ∈ (0, 1)``; each iteration recomputes
memberships from distances and centers from membership-weighted sums.  The
parallel structure matches MineBench: points partitioned across threads,
per-thread privatised weighted partial sums (``C×D`` numerators plus ``C``
denominators), and a merging phase combining one partial per thread.

The per-point work is substantially larger than k-means (the membership
update is O(C²) per point on top of the O(C·D) distances), which is why the
paper measures a far smaller serial fraction for fuzzy (0.002% vs 0.015%)
with a comparable merge size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive, check_positive_int
from repro.workloads.base import (
    PHASE_INIT,
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    PHASE_SERIAL,
    ClusteringWorkloadBase,
    PhaseWork,
    WorkloadExecution,
)
from repro.workloads.datasets import ClusteringDataset
from repro.workloads.reduction import resolve_strategy

__all__ = ["FuzzyCMeansWorkload"]

_DIST_INSTR_PER_DIM = 3
_MEMBERSHIP_INSTR = 4        # per (center, center) ratio term
_WEIGHTED_ACCUM_INSTR = 3    # multiply-add per dimension per center
_COMBINE_INSTR = 2
_UPDATE_INSTR = 3
_POINT_OVERHEAD = 6


@dataclass
class FuzzyCMeansWorkload(ClusteringWorkloadBase):
    """Fuzzy c-means over a :class:`ClusteringDataset`.

    Parameters
    ----------
    dataset:
        Points and the center count C.
    fuzziness:
        The fuzzifier m > 1 (MineBench default 2.0).
    max_iterations / tolerance:
        Iteration control on total center movement.
    reduction_strategy:
        'serial' | 'tree' | 'parallel'.
    seed:
        Initial-center seed.
    init:
        'random' (MineBench-style) or 'kmeans++' (D²-weighted seeding).
    """

    dataset: ClusteringDataset
    fuzziness: float = 2.0
    max_iterations: int = 10
    tolerance: float = 1e-4
    reduction_strategy: str = "serial"
    seed: int = 0
    init: str = "random"

    name = "fuzzy"

    def __post_init__(self) -> None:
        check_positive_int(self.max_iterations, "max_iterations")
        check_positive(self.tolerance, "tolerance")
        if self.fuzziness <= 1.0:
            raise ValueError(f"fuzziness must be > 1, got {self.fuzziness}")
        if self.init not in ("random", "kmeans++"):
            raise ValueError(f"init must be 'random' or 'kmeans++', got {self.init!r}")
        resolve_strategy(self.reduction_strategy)

    def _initial_centers(self, rng) -> "np.ndarray":
        """Starting centers per the configured policy (mirrors kmeans)."""
        ds = self.dataset
        C = ds.n_centers
        if self.init == "random":
            idx = rng.choice(ds.n_points, size=C, replace=False)
            return ds.points[idx].copy()
        centers = [ds.points[rng.integers(ds.n_points)]]
        d2 = ((ds.points - centers[0]) ** 2).sum(axis=1)
        for _ in range(C - 1):
            probs = d2 / d2.sum() if d2.sum() > 0 else np.full(ds.n_points, 1 / ds.n_points)
            centers.append(ds.points[rng.choice(ds.n_points, p=probs)])
            d2 = np.minimum(d2, ((ds.points - centers[-1]) ** 2).sum(axis=1))
        return np.array(centers)

    # ── kernels ───────────────────────────────────────────────────────────
    def _memberships(self, points: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Membership matrix (n, C) from current centers."""
        eps = 1e-12
        d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2) + eps
        power = 1.0 / (self.fuzziness - 1.0)
        inv = d2 ** (-power)
        return inv / inv.sum(axis=1, keepdims=True)

    def _partials(
        self, points: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        u = self._memberships(points, centers)
        w = u ** self.fuzziness
        numer = w.T @ points           # (C, D)
        denom = w.sum(axis=0)          # (C,)
        return u, numer, denom

    def _parallel_instr(self, n_points_thread: int) -> int:
        C, D = self.dataset.n_centers, self.dataset.n_dims
        per_point = (
            C * D * _DIST_INSTR_PER_DIM
            + C * C * _MEMBERSHIP_INSTR
            + C * D * _WEIGHTED_ACCUM_INSTR
            + _POINT_OVERHEAD
        )
        return n_points_thread * per_point

    @property
    def reduction_elements(self) -> int:
        """x: merged elements per iteration (C·D numerators + C denominators)."""
        return self.dataset.n_centers * (self.dataset.n_dims + 1)

    # ── execution ─────────────────────────────────────────────────────────
    def execute(self, n_threads: int) -> WorkloadExecution:
        """Run fuzzy c-means with ``n_threads`` logical threads."""
        check_positive_int(n_threads, "n_threads")
        ds = self.dataset
        if n_threads > ds.n_points:
            raise ValueError(f"more threads ({n_threads}) than points ({ds.n_points})")
        C, D = ds.n_centers, ds.n_dims
        rng = np.random.default_rng(self.seed)
        reduce_fn = resolve_strategy(self.reduction_strategy)
        execution = WorkloadExecution(
            workload=self.name, n_threads=n_threads, n_iterations=0
        )
        serial_only = lambda v: tuple(  # noqa: E731
            int(v) if t == 0 else 0 for t in range(n_threads)
        )

        centers = self._initial_centers(rng)
        execution.add(PhaseWork(
            phase=PHASE_INIT,
            per_thread_instructions=serial_only(C * D * 2 + 80),
            per_thread_reads=serial_only(C * D),
            per_thread_writes=serial_only(C * D),
        ))

        slices = self.partition(ds.n_points, n_threads)
        counts_per_thread = self.per_thread_counts(ds.n_points, n_threads)
        memberships = np.empty((ds.n_points, C), dtype=np.float64)

        for iteration in range(self.max_iterations):
            numers, denoms = [], []
            for sl in slices:
                u, numer, denom = self._partials(ds.points[sl], centers)
                memberships[sl] = u
                numers.append(numer)
                denoms.append(denom)
            execution.add(PhaseWork(
                phase=PHASE_PARALLEL,
                per_thread_instructions=tuple(
                    self._parallel_instr(int(n)) for n in counts_per_thread
                ),
                per_thread_reads=tuple(int(n) * D for n in counts_per_thread),
                per_thread_writes=tuple(int(n) * 2 for n in counts_per_thread),
            ))

            merged_numer, cost_n = reduce_fn(numers)
            merged_denom, cost_d = reduce_fn(denoms)
            serial_ops = cost_n.serial_element_ops + cost_d.serial_element_ops
            parallel_ops = cost_n.parallel_element_ops + cost_d.parallel_element_ops
            messages = cost_n.messages + cost_d.messages
            # master walks the critical path; other threads carry the
            # distributed share (per-thread, see ReductionCost semantics)
            red_instr = [parallel_ops * _COMBINE_INSTR] * n_threads
            red_reads = [parallel_ops] * n_threads
            if serial_ops:
                red_instr[0] = serial_ops * _COMBINE_INSTR
                red_reads[0] = serial_ops
            shared = [messages // n_threads] * n_threads
            if self.reduction_strategy == "serial":
                shared = [0] * n_threads
                shared[0] = messages
            execution.add(PhaseWork(
                phase=PHASE_REDUCTION,
                per_thread_instructions=tuple(red_instr),
                per_thread_reads=tuple(red_reads),
                per_thread_writes=tuple(
                    self.reduction_elements if t == 0 else 0 for t in range(n_threads)
                ),
                shared_reads=tuple(shared),
            ))

            new_centers = merged_numer / np.maximum(merged_denom, 1e-12)[:, None]
            movement = float(np.abs(new_centers - centers).sum())
            centers = new_centers
            execution.add(PhaseWork(
                phase=PHASE_SERIAL,
                per_thread_instructions=serial_only(C * D * _UPDATE_INSTR + C),
                per_thread_reads=serial_only(C * D),
                per_thread_writes=serial_only(C * D),
            ))
            execution.n_iterations = iteration + 1
            if movement < self.tolerance:
                break

        execution.outputs = {
            "centers": centers,
            "memberships": memberships,
        }
        return execution
