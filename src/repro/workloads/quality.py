"""Clustering-quality metrics.

The reproduction's workloads must be *real* clustering algorithms, not
timing stand-ins; these metrics let tests and examples verify that the
outputs are good clusterings (and identical across thread counts).

Implemented from scratch (no sklearn in the environment):

* :func:`inertia` — within-cluster sum of squares (k-means' objective);
* :func:`purity` — majority-label agreement against ground truth;
* :func:`adjusted_rand_index` — chance-corrected pair-counting agreement;
* :func:`silhouette_mean` — mean silhouette coefficient (O(n²); sampled);
* :func:`davies_bouldin` — cluster scatter/separation ratio (lower=better).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int

__all__ = [
    "inertia",
    "purity",
    "adjusted_rand_index",
    "silhouette_mean",
    "davies_bouldin",
]


def _check_labels(points: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    if labels.shape != (points.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} does not match {points.shape[0]} points"
        )
    return points, labels


def inertia(points: np.ndarray, labels: np.ndarray, centers: np.ndarray) -> float:
    """Within-cluster sum of squared distances to the assigned center."""
    points, labels = _check_labels(points, labels)
    centers = np.asarray(centers, dtype=np.float64)
    if labels.min() < 0 or labels.max() >= centers.shape[0]:
        raise ValueError("labels reference centers that do not exist")
    return float(((points - centers[labels]) ** 2).sum())


def purity(labels: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of points whose cluster's majority true label matches
    their own true label.  1.0 = every cluster is label-pure."""
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.shape != truth.shape:
        raise ValueError("labels and truth must have the same shape")
    if labels.size == 0:
        raise ValueError("need at least one point")
    total = 0
    for c in np.unique(labels):
        members = truth[labels == c]
        counts = np.unique(members, return_counts=True)[1]
        total += int(counts.max())
    return total / labels.size


def adjusted_rand_index(labels: np.ndarray, truth: np.ndarray) -> float:
    """Adjusted Rand index between two labelings (1 = identical
    partitions, ~0 = random agreement)."""
    labels = np.asarray(labels)
    truth = np.asarray(truth)
    if labels.shape != truth.shape:
        raise ValueError("labels and truth must have the same shape")
    n = labels.size
    if n < 2:
        raise ValueError("need at least two points")
    _, a_inv = np.unique(labels, return_inverse=True)
    _, b_inv = np.unique(truth, return_inverse=True)
    contingency = np.zeros((a_inv.max() + 1, b_inv.max() + 1), dtype=np.int64)
    np.add.at(contingency, (a_inv, b_inv), 1)

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) // 2

    sum_ij = comb2(contingency).sum()
    sum_a = comb2(contingency.sum(axis=1)).sum()
    sum_b = comb2(contingency.sum(axis=0)).sum()
    total = comb2(np.array([n]))[0]
    expected = sum_a * sum_b / total if total else 0.0
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        return 1.0
    return float((sum_ij - expected) / (max_index - expected))


def silhouette_mean(
    points: np.ndarray,
    labels: np.ndarray,
    sample: "int | None" = 500,
    seed: int = 0,
) -> float:
    """Mean silhouette coefficient in [−1, 1] (higher = better separated).

    Exact silhouette is O(n²); with ``sample`` set, a seeded subsample of
    points is scored against the full dataset.
    """
    points, labels = _check_labels(points, labels)
    uniq = np.unique(labels)
    if uniq.size < 2:
        raise ValueError("silhouette needs at least two clusters")
    n = points.shape[0]
    idx = np.arange(n)
    if sample is not None and sample < n:
        check_positive_int(sample, "sample")
        idx = np.random.default_rng(seed).choice(n, size=sample, replace=False)
    scores = []
    members = {c: points[labels == c] for c in uniq}
    for i in idx:
        own = labels[i]
        p = points[i]
        d_own = np.linalg.norm(members[own] - p, axis=1)
        a = d_own.sum() / max(1, d_own.size - 1)  # exclude self
        b = min(
            float(np.linalg.norm(members[c] - p, axis=1).mean())
            for c in uniq if c != own and members[c].size
        )
        denom = max(a, b)
        scores.append(0.0 if denom == 0 else (b - a) / denom)
    return float(np.mean(scores))


def davies_bouldin(points: np.ndarray, labels: np.ndarray) -> float:
    """Davies–Bouldin index (average worst scatter/separation ratio;
    lower = better)."""
    points, labels = _check_labels(points, labels)
    uniq = np.unique(labels)
    if uniq.size < 2:
        raise ValueError("Davies-Bouldin needs at least two clusters")
    centroids = np.array([points[labels == c].mean(axis=0) for c in uniq])
    scatters = np.array([
        float(np.linalg.norm(points[labels == c] - centroids[k], axis=1).mean())
        for k, c in enumerate(uniq)
    ])
    k = uniq.size
    worst = np.zeros(k)
    for i in range(k):
        ratios = [
            (scatters[i] + scatters[j]) / np.linalg.norm(centroids[i] - centroids[j])
            for j in range(k) if j != i
        ]
        worst[i] = max(ratios)
    return float(worst.mean())
