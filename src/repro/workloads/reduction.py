"""Reduction strategies for per-thread partial results.

Algorithm 1 of the paper is the *serial* (linear) strategy: the master
accumulates one partial per thread.  The paper also analyses a *tree*
(logarithmic) strategy and — in Section V.E — a *privatised parallel*
strategy where each thread combines its slice of the elements across all
partials.

All three compute the identical sum; the difference is the cost shape,
which each strategy reports as a :class:`ReductionCost` (serial combine
steps, parallel combine steps per thread, messages exchanged) so the
instrumentation and trace generation charge the right phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ReductionCost",
    "serial_reduce",
    "tree_reduce",
    "parallel_reduce",
    "STRATEGIES",
    "resolve_strategy",
]


@dataclass(frozen=True)
class ReductionCost:
    """Cost accounting for one reduction of ``x`` elements over ``p``
    partials.

    ``serial_element_ops`` — element combines executed on the critical
    (serial) path, i.e. by the master; ``parallel_element_ops`` — element
    combines *per non-master thread* that run concurrently with (or
    alongside) the critical path; ``messages`` — partial-result transfers
    between threads (each of ``x`` elements counted once per transfer).
    """

    strategy: str
    x: int
    p: int
    serial_element_ops: int
    parallel_element_ops: int
    messages: int


def _check(partials: Sequence[np.ndarray]) -> list[np.ndarray]:
    if len(partials) == 0:
        raise ValueError("need at least one partial result")
    arrays = [np.asarray(a, dtype=np.float64) for a in partials]
    shape = arrays[0].shape
    for a in arrays[1:]:
        if a.shape != shape:
            raise ValueError(f"partial shapes differ: {a.shape} vs {shape}")
    return arrays


def serial_reduce(partials: Sequence[np.ndarray]) -> tuple[np.ndarray, ReductionCost]:
    """Master-accumulates-all (Algorithm 1): linear in the thread count.

    The master walks the partials in thread order and adds each into the
    accumulator (``for i in clusters: for j in threads: new += partial``) —
    ``x·p`` element combines, all serial, which is exactly the model's
    ``grow_linear(nc) = nc`` convention (one full pass even at p = 1);
    ``(p−1)·x`` element transfers reach the master from remote threads.
    """
    arrays = _check(partials)
    total = arrays[0].copy()
    for a in arrays[1:]:
        total += a
    x = int(np.prod(arrays[0].shape)) if arrays[0].shape else 1
    p = len(arrays)
    return total, ReductionCost(
        strategy="serial", x=x, p=p,
        serial_element_ops=x * p,
        parallel_element_ops=0,
        messages=x * (p - 1),
    )


def tree_reduce(partials: Sequence[np.ndarray]) -> tuple[np.ndarray, ReductionCost]:
    """Binary combining tree: ``ceil(log2 p)`` rounds.

    Round k halves the live partials; the critical path executes one
    ``x``-element combine per round — ``x·max(1, ceil(log2 p))`` serial
    combines (a single pass even at p = 1, matching ``grow_log(1) = 1``) —
    while the total work stays ``x·(p−1)`` spread over threads.
    """
    arrays = _check(partials)
    p = len(arrays)
    x = int(np.prod(arrays[0].shape)) if arrays[0].shape else 1
    live = [a.copy() for a in arrays]
    messages = 0
    while len(live) > 1:
        nxt = []
        for i in range(0, len(live) - 1, 2):
            nxt.append(live[i] + live[i + 1])
            messages += x
        if len(live) % 2 == 1:
            nxt.append(live[-1])
        live = nxt
    rounds = max(1, math.ceil(math.log2(p))) if p > 1 else 1
    # total combines x·(p−1); the master's chain is the critical path
    # (x per round); the rest spreads over the p−1 other threads
    off_critical = max(0, x * (p - 1) - x * rounds)
    per_thread = math.ceil(off_critical / (p - 1)) if p > 1 else 0
    return live[0], ReductionCost(
        strategy="tree", x=x, p=p,
        serial_element_ops=x * rounds,
        parallel_element_ops=per_thread,
        messages=messages,
    )


def parallel_reduce(
    partials: Sequence[np.ndarray], broadcast_back: bool = True
) -> tuple[np.ndarray, ReductionCost]:
    """Privatised parallel reduction (Section V.E).

    Each of the ``p`` threads owns ``x/p`` of the elements and sums that
    slice across all ``p`` partials — per-thread work ``(x/p)·p = x``,
    constant in the thread count ("computation does not scale"), with no
    serial combines.  The
    communication is the expensive part: every thread sends its slice of
    every partial to the slice owner, ``(p−1)·x`` transfers, doubled when
    the combined result is broadcast back.
    """
    arrays = _check(partials)
    p = len(arrays)
    x = int(np.prod(arrays[0].shape)) if arrays[0].shape else 1
    flat = np.stack([a.ravel() for a in arrays])  # (p, x)
    total_flat = np.zeros(flat.shape[1], dtype=np.float64)
    # slice ownership: thread t owns elements [t::p] (cyclic, balanced)
    for t in range(p):
        total_flat[t::p] = flat[:, t::p].sum(axis=0)
    total = total_flat.reshape(arrays[0].shape)
    messages = x * (p - 1)
    if broadcast_back:
        messages *= 2
    per_thread = (x // p + (1 if x % p else 0)) * p
    return total, ReductionCost(
        strategy="parallel", x=x, p=p,
        serial_element_ops=0,
        parallel_element_ops=per_thread,
        messages=messages,
    )


STRATEGIES = {
    "serial": serial_reduce,
    "tree": tree_reduce,
    "parallel": parallel_reduce,
}


def resolve_strategy(name: str):
    """Look up a reduction strategy by name."""
    if name not in STRATEGIES:
        raise ValueError(f"unknown strategy {name!r}; expected one of {sorted(STRATEGIES)}")
    return STRATEGIES[name]
