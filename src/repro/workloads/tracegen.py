"""Compile a workload execution into a simulator trace program.

Each :class:`~repro.workloads.base.PhaseWork` record becomes a fork-join
region: every thread executes its share of the phase's work (compute bursts
interleaved with cache-line-granular loads and stores against a
per-thread/per-purpose address map), then all threads meet at a barrier.

The address map is what makes the merging phase expensive *in the
simulator* rather than by fiat: during the parallel phase each thread
stores its partial results into its own region; during a serial reduction
the master loads those same lines — lines last written by other cores, so
the MESI protocol turns each into a coherence miss with a cache-to-cache
transfer, exactly the memory behaviour the paper attributes hop's
superlinear merge growth to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simx.trace import (
    Barrier,
    Compute,
    Load,
    Op,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
)
from repro.workloads.base import PhaseWork, WorkloadExecution

__all__ = ["AddressMap", "TraceGenerator", "program_from_execution"]

_LINE = 64
_ELEM_BYTES = 8  # float64


@dataclass(frozen=True)
class AddressMap:
    """Region layout for one simulated process.

    Each thread owns a private data region (its point partition) and a
    partials region (its privatised reduction buffers); globals (centers,
    group tables) are shared.  Regions are sized generously so they never
    alias.
    """

    data_base: int = 0x1000_0000
    data_stride: int = 0x0100_0000      # per-thread point partition
    partials_base: int = 0x2000_0000
    partials_stride: int = 0x0002_0000  # per-thread partial buffers
    globals_base: int = 0x3000_0000

    def data_region(self, tid: int) -> int:
        return self.data_base + tid * self.data_stride

    def partials_region(self, tid: int) -> int:
        return self.partials_base + tid * self.partials_stride


def _lines_for(elements: int) -> int:
    """Cache lines touched by ``elements`` contiguous float64 reads."""
    return max(0, math.ceil(elements * _ELEM_BYTES / _LINE))


class TraceGenerator:
    """Builds :class:`~repro.simx.trace.TraceProgram` objects from
    workload executions.

    Parameters
    ----------
    address_map:
        Region layout (default layout suits all bundled workloads).
    chunks:
        How many (memory, compute) interleavings to emit per phase per
        thread — more chunks model a tighter loop, fewer make shorter
        traces.
    mem_scale:
        Optional down-sampling of memory operations: with ``mem_scale=4``
        only every 4th cache line is touched and compute is untouched.
        Keeps big-dataset traces tractable; 1 (default) is exact.
    """

    def __init__(
        self,
        address_map: "AddressMap | None" = None,
        chunks: int = 8,
        mem_scale: int = 1,
    ):
        if chunks < 1:
            raise ValueError(f"chunks must be >= 1, got {chunks}")
        if mem_scale < 1:
            raise ValueError(f"mem_scale must be >= 1, got {mem_scale}")
        self.amap = address_map or AddressMap()
        self.chunks = chunks
        self.mem_scale = mem_scale

    # ── per-phase op emission ─────────────────────────────────────────────
    def _phase_ops(
        self,
        work: PhaseWork,
        tid: int,
        n_threads: int,
        data_cursor: list[int],
        iteration: int,
    ) -> list[Op]:
        instr = work.per_thread_instructions[tid]
        reads = work.per_thread_reads[tid] // self.mem_scale
        writes = work.per_thread_writes[tid] // self.mem_scale
        shared = (
            work.shared_reads[tid] // self.mem_scale if work.shared_reads else 0
        )
        if instr == 0 and reads == 0 and writes == 0 and shared == 0:
            return []

        read_lines = _lines_for(max(0, reads - shared))
        shared_lines = _lines_for(shared)
        write_lines = _lines_for(writes)

        ops: list[Op] = [PhaseBegin(work.phase)]
        n_chunks = self.chunks
        instr_per_chunk = instr // n_chunks
        reads_per_chunk = read_lines // n_chunks
        writes_per_chunk = write_lines // n_chunks

        # private data reads stream through the thread's data region;
        # the cursor persists across phases so reuse hits in cache when the
        # working set fits (centers) and misses when it doesn't (points).
        base = self.amap.data_region(tid)
        for c in range(n_chunks):
            for _ in range(reads_per_chunk):
                ops.append(Load(base + (data_cursor[tid] % (self.amap.data_stride // 2))))
                data_cursor[tid] += _LINE
            pbase = self.amap.partials_region(tid)
            for w in range(writes_per_chunk):
                # partial buffers are small and revisited every iteration
                ops.append(Store(pbase + (w % 64) * _LINE + (c % 4) * 64 * _LINE))
            if instr_per_chunk:
                ops.append(Compute(instr_per_chunk))

        # leftovers
        rem_instr = instr - instr_per_chunk * n_chunks
        if rem_instr:
            ops.append(Compute(rem_instr))
        for i in range(read_lines - reads_per_chunk * n_chunks):
            ops.append(Load(base + (data_cursor[tid] % (self.amap.data_stride // 2))))
            data_cursor[tid] += _LINE
        for w in range(write_lines - writes_per_chunk * n_chunks):
            ops.append(Store(self.amap.partials_region(tid) + (w % 64) * _LINE))

        # shared reads: walk the *other* threads' partials regions — these
        # lines were written by other cores, so they coherence-miss.
        if shared_lines:
            per_owner = max(1, shared_lines // max(1, n_threads - 1)) if n_threads > 1 else shared_lines
            emitted = 0
            owner = 0
            while emitted < shared_lines:
                if n_threads > 1:
                    owner = (owner + 1) % n_threads
                    if owner == tid:
                        continue
                obase = self.amap.partials_region(owner)
                for i in range(min(per_owner, shared_lines - emitted)):
                    ops.append(Load(obase + (i % 64) * _LINE + (iteration % 4) * 64 * _LINE))
                    emitted += 1
        ops.append(PhaseEnd(work.phase))
        return ops

    # ── program assembly ──────────────────────────────────────────────────
    def program(self, execution: WorkloadExecution) -> TraceProgram:
        """Compile an execution into a fork-join trace program."""
        n = execution.n_threads
        per_thread: list[list[Op]] = [[] for _ in range(n)]
        data_cursor = [0] * n
        barrier_id = 0
        iteration = 0
        for work in execution.phases:
            if work.phase == "parallel":
                iteration += 1
            for tid in range(n):
                per_thread[tid].extend(
                    self._phase_ops(work, tid, n, data_cursor, iteration)
                )
            if n > 1:
                for tid in range(n):
                    per_thread[tid].append(Barrier(barrier_id))
                barrier_id += 1
        return TraceProgram(
            name=f"{execution.workload}@{n}",
            threads=[ThreadTrace(tid, ops) for tid, ops in enumerate(per_thread)],
            metadata={
                "workload": execution.workload,
                "n_threads": n,
                "n_iterations": execution.n_iterations,
            },
        )


def program_from_execution(
    execution: WorkloadExecution, mem_scale: int = 1
) -> TraceProgram:
    """One-call helper: compile with default layout and chunking."""
    return TraceGenerator(mem_scale=mem_scale).program(execution)
