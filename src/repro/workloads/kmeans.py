"""K-means clustering with an explicit merging phase (MineBench kmeans).

The parallel structure mirrors MineBench: points are statically partitioned
across threads; each thread assigns its points to the nearest center and
accumulates *privatised* partial sums (one ``C×D`` array plus ``C`` counts
per thread); the merging phase (Algorithm 1 of the paper) then combines the
partials — the loop ``for i in clusters: for j in threads`` whose cost grows
linearly with the thread count — and a small serial phase recomputes the
centers and checks convergence.

Instruction-count constants approximate a compiled inner loop (a
subtract/multiply/add triple per dimension per center, etc.); their absolute
values only set the scale of the measured fractions, the *structure* (what
grows with p, what doesn't) is what the paper's model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive, check_positive_int
from repro.workloads.base import (
    PHASE_INIT,
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    PHASE_SERIAL,
    ClusteringWorkloadBase,
    PhaseWork,
    WorkloadExecution,
)
from repro.workloads.datasets import ClusteringDataset
from repro.workloads.reduction import resolve_strategy

__all__ = ["KMeansWorkload"]

# instruction-cost constants (per element operation of the inner loops)
_DIST_INSTR_PER_DIM = 3      # sub, mul, add
_MIN_TRACK_INSTR = 2         # compare + conditional move per center
_ACCUM_INSTR_PER_DIM = 2     # load-add-store amortised
_COMBINE_INSTR = 2           # load + add per merged element
_UPDATE_INSTR = 3            # divide + convergence delta per element
_POINT_OVERHEAD = 4          # loop/index bookkeeping per point


@dataclass
class KMeansWorkload(ClusteringWorkloadBase):
    """Lloyd's k-means over a :class:`ClusteringDataset`.

    Parameters
    ----------
    dataset:
        The points and the center count C.
    max_iterations:
        Upper bound on Lloyd iterations.
    tolerance:
        Convergence threshold on total center movement.
    reduction_strategy:
        'serial' (MineBench's, the paper's baseline), 'tree' or 'parallel'.
    seed:
        Seed for the initial center choice.
    init:
        'random' (MineBench-style uniform sample) or 'kmeans++'
        (D²-weighted seeding; far less prone to poor local optima).
    """

    dataset: ClusteringDataset
    max_iterations: int = 10
    tolerance: float = 1e-4
    reduction_strategy: str = "serial"
    seed: int = 0
    init: str = "random"

    name = "kmeans"

    def __post_init__(self) -> None:
        check_positive_int(self.max_iterations, "max_iterations")
        check_positive(self.tolerance, "tolerance")
        if self.init not in ("random", "kmeans++"):
            raise ValueError(f"init must be 'random' or 'kmeans++', got {self.init!r}")
        resolve_strategy(self.reduction_strategy)  # validate early

    def _initial_centers(self, rng: np.ndarray) -> np.ndarray:
        """Pick the C starting centers per the configured policy."""
        ds = self.dataset
        C = ds.n_centers
        if self.init == "random":
            idx = rng.choice(ds.n_points, size=C, replace=False)
            return ds.points[idx].copy()
        # kmeans++: first center uniform, then D²-weighted
        centers = [ds.points[rng.integers(ds.n_points)]]
        d2 = ((ds.points - centers[0]) ** 2).sum(axis=1)
        for _ in range(C - 1):
            probs = d2 / d2.sum() if d2.sum() > 0 else np.full(ds.n_points, 1 / ds.n_points)
            nxt = rng.choice(ds.n_points, p=probs)
            centers.append(ds.points[nxt])
            d2 = np.minimum(d2, ((ds.points - centers[-1]) ** 2).sum(axis=1))
        return np.array(centers)

    # ── numeric kernels (also the source of the work accounting) ─────────
    def _assign_and_accumulate(
        self, points: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Assignment + privatised partial sums for one thread's points."""
        # pairwise squared distances (n_t, C)
        d2 = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = np.argmin(d2, axis=1)
        C, D = centers.shape
        partial_sums = np.zeros((C, D), dtype=np.float64)
        np.add.at(partial_sums, assign, points)
        partial_counts = np.bincount(assign, minlength=C).astype(np.float64)
        return assign, partial_sums, partial_counts

    def _parallel_instr(self, n_points_thread: int) -> int:
        C, D = self.dataset.n_centers, self.dataset.n_dims
        per_point = (
            C * D * _DIST_INSTR_PER_DIM
            + C * _MIN_TRACK_INSTR
            + D * _ACCUM_INSTR_PER_DIM
            + _POINT_OVERHEAD
        )
        return n_points_thread * per_point

    @property
    def reduction_elements(self) -> int:
        """x: elements merged per iteration (C·D sums plus C counts)."""
        return self.dataset.n_centers * (self.dataset.n_dims + 1)

    # ── execution ─────────────────────────────────────────────────────────
    def execute(self, n_threads: int) -> WorkloadExecution:
        """Run k-means with ``n_threads`` logical threads.

        The numerics are exact (independent of n_threads up to floating
        point associativity); the accounting reflects the per-thread
        partitioning.
        """
        check_positive_int(n_threads, "n_threads")
        ds = self.dataset
        if n_threads > ds.n_points:
            raise ValueError(
                f"more threads ({n_threads}) than points ({ds.n_points})"
            )
        C, D = ds.n_centers, ds.n_dims
        rng = np.random.default_rng(self.seed)
        reduce_fn = resolve_strategy(self.reduction_strategy)
        execution = WorkloadExecution(
            workload=self.name, n_threads=n_threads, n_iterations=0
        )

        # ── init (serial): choose initial centers ────────────────────────
        centers = self._initial_centers(rng)
        serial_only = lambda v: tuple(  # noqa: E731 - tiny local helper
            int(v) if t == 0 else 0 for t in range(n_threads)
        )
        zeros = tuple(0 for _ in range(n_threads))
        execution.add(PhaseWork(
            phase=PHASE_INIT,
            per_thread_instructions=serial_only(C * D * 2 + 50),
            per_thread_reads=serial_only(C * D),
            per_thread_writes=serial_only(C * D),
        ))

        slices = self.partition(ds.n_points, n_threads)
        counts_per_thread = self.per_thread_counts(ds.n_points, n_threads)
        assignments = np.empty(ds.n_points, dtype=np.int64)

        for iteration in range(self.max_iterations):
            # ── parallel: assignment + privatised partials ────────────────
            partial_sums, partial_counts = [], []
            for sl in slices:
                a, ps, pc = self._assign_and_accumulate(ds.points[sl], centers)
                assignments[sl] = a
                partial_sums.append(ps)
                partial_counts.append(pc)
            execution.add(PhaseWork(
                phase=PHASE_PARALLEL,
                per_thread_instructions=tuple(
                    self._parallel_instr(int(n)) for n in counts_per_thread
                ),
                per_thread_reads=tuple(int(n) * D for n in counts_per_thread),
                per_thread_writes=tuple(int(n) * 2 for n in counts_per_thread),
            ))

            # ── reduction (merging phase) ────────────────────────────────
            merged_sums, cost_s = reduce_fn(partial_sums)
            merged_counts, cost_c = reduce_fn(partial_counts)
            serial_ops = cost_s.serial_element_ops + cost_c.serial_element_ops
            parallel_ops = cost_s.parallel_element_ops + cost_c.parallel_element_ops
            messages = cost_s.messages + cost_c.messages
            # master walks the critical path; other threads carry the
            # distributed share (per-thread, see ReductionCost semantics)
            red_instr = [parallel_ops * _COMBINE_INSTR] * n_threads
            red_reads = [parallel_ops] * n_threads
            if serial_ops:
                red_instr[0] = serial_ops * _COMBINE_INSTR
                red_reads[0] = serial_ops
            shared = [messages // n_threads] * n_threads
            if self.reduction_strategy == "serial":
                shared = [0] * n_threads
                shared[0] = messages  # the master reads every remote partial
            execution.add(PhaseWork(
                phase=PHASE_REDUCTION,
                per_thread_instructions=tuple(red_instr),
                per_thread_reads=tuple(red_reads),
                per_thread_writes=tuple(
                    self.reduction_elements if t == 0 else 0 for t in range(n_threads)
                ),
                shared_reads=tuple(shared),
            ))

            # ── serial: recompute centers, convergence test ──────────────
            safe_counts = np.maximum(merged_counts, 1.0)
            new_centers = merged_sums / safe_counts[:, None]
            # empty clusters keep their previous position
            empty = merged_counts < 0.5
            new_centers[empty] = centers[empty]
            movement = float(np.abs(new_centers - centers).sum())
            centers = new_centers
            execution.add(PhaseWork(
                phase=PHASE_SERIAL,
                per_thread_instructions=serial_only(C * D * _UPDATE_INSTR + C),
                per_thread_reads=serial_only(C * D),
                per_thread_writes=serial_only(C * D),
            ))
            execution.n_iterations = iteration + 1
            if movement < self.tolerance:
                break

        execution.outputs = {
            "centers": centers,
            "assignments": assignments,
            "inertia": float(
                ((ds.points - centers[assignments]) ** 2).sum()
            ),
        }
        return execution
