"""Parallel histogram: the canonical partial-write reduction.

Jin, Yang & Agrawal [TKDE 2005], which the paper's Related Work leans on,
establish that privatised partial-write reductions "are common across many
categories of data mining applications" beyond clustering.  The histogram
is that pattern at its purest: per-item work is a single bin update, so the
merging phase (one ``n_bins`` array per thread) dominates the serial time
far more than in kmeans — a stress case for the extended model at the
opposite end of the fored spectrum from the clustering workloads.

Structure per the common template: init (allocate/zero bins), parallel
(each thread bins its slice into a private array), reduction (combine one
partial per thread via the configured strategy), serial (normalise, find
the mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive_int
from repro.workloads.base import (
    PHASE_INIT,
    PHASE_PARALLEL,
    PHASE_REDUCTION,
    PHASE_SERIAL,
    ClusteringWorkloadBase,
    PhaseWork,
    WorkloadExecution,
)
from repro.workloads.reduction import resolve_strategy

__all__ = ["HistogramWorkload"]

_BIN_INSTR = 6        # hash/scale + bounds check + increment per item
_COMBINE_INSTR = 2
_NORMALISE_INSTR = 2


@dataclass
class HistogramWorkload(ClusteringWorkloadBase):
    """Histogram over synthetic data.

    Parameters
    ----------
    n_items:
        Input size (values drawn from a seeded mixture so the histogram
        has structure worth checking).
    n_bins:
        Histogram resolution — this is the reduction size x, so it directly
        dials the merging overhead.
    seed:
        Data seed.
    reduction_strategy:
        'serial' | 'tree' | 'parallel'.
    """

    n_items: int = 100_000
    n_bins: int = 1024
    seed: int = 0
    reduction_strategy: str = "serial"

    name = "histogram"

    def __post_init__(self) -> None:
        check_positive_int(self.n_items, "n_items")
        check_positive_int(self.n_bins, "n_bins")
        resolve_strategy(self.reduction_strategy)

    def _data(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        # mixture: uniform background + two Gaussian bumps
        n_bump = self.n_items // 3
        background = rng.integers(0, self.n_bins, size=self.n_items - 2 * n_bump)
        bump1 = np.clip(
            rng.normal(self.n_bins * 0.25, self.n_bins * 0.03, n_bump), 0, self.n_bins - 1
        ).astype(np.int64)
        bump2 = np.clip(
            rng.normal(self.n_bins * 0.7, self.n_bins * 0.05, n_bump), 0, self.n_bins - 1
        ).astype(np.int64)
        return np.concatenate([background, bump1, bump2])

    def execute(self, n_threads: int) -> WorkloadExecution:
        """Run the histogram with ``n_threads`` logical threads."""
        check_positive_int(n_threads, "n_threads")
        if n_threads > self.n_items:
            raise ValueError(f"more threads ({n_threads}) than items ({self.n_items})")
        data = self._data()
        reduce_fn = resolve_strategy(self.reduction_strategy)
        ex = WorkloadExecution(
            workload=self.name, n_threads=n_threads, n_iterations=1
        )
        master = lambda v: tuple(  # noqa: E731
            int(v) if t == 0 else 0 for t in range(n_threads)
        )

        ex.add(PhaseWork(
            phase=PHASE_INIT,
            per_thread_instructions=master(self.n_bins + 40),
            per_thread_reads=master(0),
            per_thread_writes=master(self.n_bins),
        ))

        counts = self.per_thread_counts(self.n_items, n_threads)
        slices = self.partition(self.n_items, n_threads)
        partials = [
            np.bincount(data[sl], minlength=self.n_bins).astype(np.float64)
            for sl in slices
        ]
        ex.add(PhaseWork(
            phase=PHASE_PARALLEL,
            per_thread_instructions=tuple(int(c) * _BIN_INSTR for c in counts),
            per_thread_reads=tuple(int(c) for c in counts),
            per_thread_writes=tuple(int(c) for c in counts),
        ))

        total, cost = reduce_fn(partials)
        red_instr = [cost.parallel_element_ops * _COMBINE_INSTR] * n_threads
        red_reads = [cost.parallel_element_ops] * n_threads
        if cost.serial_element_ops:
            red_instr[0] = cost.serial_element_ops * _COMBINE_INSTR
            red_reads[0] = cost.serial_element_ops
        shared = [cost.messages // n_threads] * n_threads
        if self.reduction_strategy == "serial":
            shared = [0] * n_threads
            shared[0] = cost.messages
        ex.add(PhaseWork(
            phase=PHASE_REDUCTION,
            per_thread_instructions=tuple(red_instr),
            per_thread_reads=tuple(red_reads),
            per_thread_writes=master(self.n_bins),
            shared_reads=tuple(shared),
        ))

        histogram = total.astype(np.int64)
        mode_bin = int(np.argmax(histogram))
        ex.add(PhaseWork(
            phase=PHASE_SERIAL,
            per_thread_instructions=master(self.n_bins * _NORMALISE_INSTR),
            per_thread_reads=master(self.n_bins),
            per_thread_writes=master(self.n_bins),
        ))
        ex.outputs = {
            "histogram": histogram,
            "mode_bin": mode_bin,
            "density": histogram / self.n_items,
        }
        return ex
