"""Synthetic dataset generators (the MineBench data-file substitute).

MineBench ships binary data files; we generate statistically equivalent
synthetic data with the exact attribute counts of Table IV:

==============  =======  ====  ====
label           N        D     C
==============  =======  ====  ====
kmeans-base      17695     9     8
kmeans-dim       17695    18     8
kmeans-point     35390    18     8
kmeans-center    17695    18    32
fuzzy-*          (same grid)
hop-default      61440 particles (3-D positions)
hop-med         491520 particles
==============  =======  ====  ====

Clustering inputs are Gaussian mixtures (so the algorithms genuinely
converge); HOP inputs are particle positions with density concentrations
(halo-like clumps).  Everything is seeded and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.util.validation import check_positive_int

__all__ = [
    "ClusteringDataset",
    "ParticleDataset",
    "make_blobs",
    "make_particles",
    "TABLE4_DATASETS",
    "load_dataset",
]


@dataclass(frozen=True)
class ClusteringDataset:
    """Points for kmeans / fuzzy c-means.

    Attributes
    ----------
    label:
        Table IV-style label.
    points:
        float64 array of shape (N, D).
    n_centers:
        The cluster-count parameter handed to the algorithm (Table IV's C).
    true_centers:
        The mixture means the points were drawn from (for quality checks).
    """

    label: str
    points: np.ndarray
    n_centers: int
    true_centers: np.ndarray

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def n_dims(self) -> int:
        return self.points.shape[1]

    def scaled_to(self, n_points: int, label: "str | None" = None) -> "ClusteringDataset":
        """A smaller/larger dataset with the same structure (resampled)."""
        rng = np.random.default_rng(abs(hash((self.label, n_points))) % 2**32)
        idx = rng.integers(0, self.n_points, size=n_points)
        jitter = rng.normal(scale=1e-3, size=(n_points, self.n_dims))
        return ClusteringDataset(
            label=label or f"{self.label}@{n_points}",
            points=self.points[idx] + jitter,
            n_centers=self.n_centers,
            true_centers=self.true_centers,
        )


@dataclass(frozen=True)
class ParticleDataset:
    """Particle positions (and masses) for HOP density-based clustering."""

    label: str
    positions: np.ndarray  # (N, 3)
    masses: np.ndarray     # (N,)
    n_groups_hint: int

    @property
    def n_particles(self) -> int:
        return self.positions.shape[0]


def make_blobs(
    n_points: int,
    n_dims: int,
    n_centers: int,
    seed: int = 0,
    spread: float = 0.08,
    label: str = "blobs",
) -> ClusteringDataset:
    """A Gaussian mixture in the unit hypercube.

    Centers are placed uniformly at random; each point belongs to a random
    component with isotropic Gaussian noise of standard deviation
    ``spread``.
    """
    check_positive_int(n_points, "n_points")
    check_positive_int(n_dims, "n_dims")
    check_positive_int(n_centers, "n_centers")
    if n_centers > n_points:
        raise ValueError(f"n_centers {n_centers} exceeds n_points {n_points}")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.1, 0.9, size=(n_centers, n_dims))
    assignment = rng.integers(0, n_centers, size=n_points)
    noise = rng.normal(scale=spread, size=(n_points, n_dims))
    points = centers[assignment] + noise
    return ClusteringDataset(
        label=label, points=points, n_centers=n_centers, true_centers=centers
    )


def make_particles(
    n_particles: int,
    n_halos: int = 8,
    seed: int = 0,
    background_fraction: float = 0.3,
    label: str = "particles",
) -> ParticleDataset:
    """Halo-like particle positions in the unit cube for HOP.

    A fraction of particles forms dense clumps (Gaussian halos of varying
    size), the rest is a uniform background — giving HOP genuine density
    maxima to find.
    """
    check_positive_int(n_particles, "n_particles")
    check_positive_int(n_halos, "n_halos")
    if not (0.0 <= background_fraction < 1.0):
        raise ValueError(
            f"background_fraction must be in [0, 1), got {background_fraction}"
        )
    rng = np.random.default_rng(seed)
    n_background = int(n_particles * background_fraction)
    n_clustered = n_particles - n_background
    halo_centers = rng.uniform(0.15, 0.85, size=(n_halos, 3))
    halo_sizes = rng.uniform(0.01, 0.04, size=n_halos)
    halo_of = rng.integers(0, n_halos, size=n_clustered)
    clustered = halo_centers[halo_of] + rng.normal(
        scale=halo_sizes[halo_of][:, None], size=(n_clustered, 3)
    )
    background = rng.uniform(0.0, 1.0, size=(n_background, 3))
    positions = np.clip(np.vstack([clustered, background]), 0.0, 1.0)
    masses = rng.uniform(0.5, 1.5, size=n_particles)
    return ParticleDataset(
        label=label, positions=positions, masses=masses, n_groups_hint=n_halos
    )


def _table4_builders() -> Mapping[str, "callable"]:
    return {
        # kmeans / fuzzy share the attribute grid of Table IV
        "kmeans-base":   lambda: make_blobs(17695, 9, 8, seed=11, label="kmeans-base"),
        "kmeans-dim":    lambda: make_blobs(17695, 18, 8, seed=12, label="kmeans-dim"),
        "kmeans-point":  lambda: make_blobs(35390, 18, 8, seed=13, label="kmeans-point"),
        "kmeans-center": lambda: make_blobs(17695, 18, 32, seed=14, label="kmeans-center"),
        "fuzzy-base":    lambda: make_blobs(17695, 9, 8, seed=21, label="fuzzy-base"),
        "fuzzy-dim":     lambda: make_blobs(17695, 18, 8, seed=22, label="fuzzy-dim"),
        "fuzzy-point":   lambda: make_blobs(35390, 18, 8, seed=23, label="fuzzy-point"),
        "fuzzy-center":  lambda: make_blobs(17695, 18, 32, seed=24, label="fuzzy-center"),
        "hop-default":   lambda: make_particles(61440, n_halos=64, seed=31, label="hop-default"),
        "hop-med":       lambda: make_particles(491520, n_halos=128, seed=32, label="hop-med"),
    }


#: Lazily-built Table IV datasets keyed by label.
TABLE4_DATASETS = tuple(_table4_builders().keys())


def load_dataset(label: str):
    """Build the named Table IV dataset (generated on demand, seeded)."""
    builders = _table4_builders()
    if label not in builders:
        raise ValueError(f"unknown dataset {label!r}; expected one of {sorted(builders)}")
    return builders[label]()
