"""Workload phase accounting: the common structure of all three benchmarks.

A workload's execution decomposes into the paper's Fig 1 structure:

* ``init`` — constant serial setup (center initialisation, tree roots);
* ``parallel`` — the data-parallel kernel, partitioned across threads;
* ``reduction`` — the merging phase combining per-thread partials
  (the serial component that *grows* with thread count);
* ``serial`` — the remaining constant serial work (center update,
  convergence test, stop criteria).

Workloads run their numerics with numpy and simultaneously record a
:class:`PhaseWork` entry per phase per iteration: deterministic instruction
and memory-operation counts derived from the algorithm's actual loop trip
counts.  Downstream consumers convert this accounting into simulator traces
(:mod:`repro.workloads.tracegen`) or modelled wall-clock time
(:mod:`repro.hardware`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_positive_int

__all__ = [
    "PHASE_INIT",
    "PHASE_PARALLEL",
    "PHASE_REDUCTION",
    "PHASE_SERIAL",
    "SERIAL_PHASES",
    "PhaseWork",
    "WorkloadExecution",
    "ClusteringWorkloadBase",
]

PHASE_INIT = "init"
PHASE_PARALLEL = "parallel"
PHASE_REDUCTION = "reduction"
PHASE_SERIAL = "serial"

#: Phases that execute on the master thread while the others wait.
SERIAL_PHASES = (PHASE_INIT, PHASE_REDUCTION, PHASE_SERIAL)


@dataclass(frozen=True)
class PhaseWork:
    """Deterministic work accounting for one phase instance.

    Parameters
    ----------
    phase:
        One of the four phase names.
    per_thread_instructions:
        Arithmetic/control instruction count per thread.  Serial phases
        have nonzero work only for thread 0.
    per_thread_reads / per_thread_writes:
        Memory operations per thread at data granularity (converted to
        cache-line accesses downstream).
    shared_reads:
        Of ``per_thread_reads``, how many target data *written by other
        threads* (coherence-miss candidates — the merging phase's remote
        partial-result reads).
    """

    phase: str
    per_thread_instructions: tuple[int, ...]
    per_thread_reads: tuple[int, ...]
    per_thread_writes: tuple[int, ...]
    shared_reads: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        lengths = {
            len(self.per_thread_instructions),
            len(self.per_thread_reads),
            len(self.per_thread_writes),
        }
        if self.shared_reads:
            lengths.add(len(self.shared_reads))
        if len(lengths) != 1:
            raise ValueError("per-thread arrays must have equal length")
        if self.phase not in (PHASE_INIT, PHASE_PARALLEL, PHASE_REDUCTION, PHASE_SERIAL):
            raise ValueError(f"unknown phase {self.phase!r}")

    @property
    def n_threads(self) -> int:
        return len(self.per_thread_instructions)

    @property
    def total_instructions(self) -> int:
        return int(sum(self.per_thread_instructions))

    @property
    def total_memory_ops(self) -> int:
        return int(sum(self.per_thread_reads) + sum(self.per_thread_writes))

    def is_serial(self) -> bool:
        return self.phase in SERIAL_PHASES


@dataclass
class WorkloadExecution:
    """Everything one workload run produced: numerics plus accounting.

    ``phases`` is the ordered list of :class:`PhaseWork` records across all
    iterations; ``outputs`` holds the algorithm's numeric results (centers,
    memberships, group assignments, ...) for correctness checks.
    """

    workload: str
    n_threads: int
    n_iterations: int
    phases: list[PhaseWork] = field(default_factory=list)
    outputs: dict = field(default_factory=dict)

    def add(self, work: PhaseWork) -> None:
        if work.n_threads != self.n_threads:
            raise ValueError(
                f"phase has {work.n_threads} threads, execution has {self.n_threads}"
            )
        self.phases.append(work)

    def instructions_by_phase(self) -> dict[str, int]:
        """Total instructions aggregated per phase name."""
        out: dict[str, int] = {}
        for w in self.phases:
            out[w.phase] = out.get(w.phase, 0) + w.total_instructions
        return out

    def serial_instruction_fraction(self) -> float:
        """Share of total instructions in serial phases — a quick
        (machine-independent) estimate of ``s``."""
        by_phase = self.instructions_by_phase()
        total = sum(by_phase.values())
        if total == 0:
            return 0.0
        serial = sum(by_phase.get(p, 0) for p in SERIAL_PHASES)
        return serial / total


class ClusteringWorkloadBase(ABC):
    """Common machinery: thread partitioning and execution scaffolding."""

    #: workload name used in reports ("kmeans" / "fuzzy" / "hop")
    name: str = "workload"

    @abstractmethod
    def execute(self, n_threads: int) -> WorkloadExecution:
        """Run the algorithm partitioned over ``n_threads`` and return the
        execution record (numerics + per-phase work accounting)."""

    @staticmethod
    def partition(n_items: int, n_threads: int) -> list[slice]:
        """Contiguous, balanced partition of ``range(n_items)``.

        The first ``n_items % n_threads`` threads get one extra item, as in
        MineBench's static scheduling.
        """
        check_positive_int(n_threads, "n_threads")
        base, extra = divmod(n_items, n_threads)
        slices = []
        start = 0
        for t in range(n_threads):
            size = base + (1 if t < extra else 0)
            slices.append(slice(start, start + size))
            start += size
        return slices

    @staticmethod
    def per_thread_counts(n_items: int, n_threads: int) -> np.ndarray:
        """Item count per thread under :meth:`partition`."""
        return np.array(
            [s.stop - s.start for s in ClusteringWorkloadBase.partition(n_items, n_threads)],
            dtype=np.int64,
        )
