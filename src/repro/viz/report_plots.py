"""Chart rendering for experiment reports.

Turns an :class:`~repro.experiments.report.ExperimentReport`'s series
tables into terminal line charts: any table whose first column is numeric
(the x axis) and whose remaining columns are numeric series gets charted.
"""

from __future__ import annotations

from repro.viz.ascii_charts import line_chart

__all__ = ["chartable_tables", "render_report_charts"]


def _as_float(cell: str) -> "float | None":
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def chartable_tables(report) -> list:
    """Tables in the report that look like figure series (numeric x +
    at least one numeric series over >= 3 points)."""
    out = []
    for t in report.tables:
        if len(t.columns) < 2 or len(t.rows) < 3:
            continue
        xs = [_as_float(row[0]) for row in t.rows]
        if any(v is None for v in xs):
            continue
        numeric_cols = []
        for c in range(1, len(t.columns)):
            vals = [_as_float(row[c]) for row in t.rows]
            if all(v is not None for v in vals):
                numeric_cols.append(c)
        if numeric_cols:
            out.append(t)
    return out


def render_report_charts(report, width: int = 64, height: int = 14) -> str:
    """Render every chartable table in the report as an ASCII line chart."""
    charts = []
    for t in chartable_tables(report):
        xs = [float(row[0]) for row in t.rows]
        series = {}
        for c in range(1, len(t.columns)):
            vals = [_as_float(row[c]) for row in t.rows]
            if all(v is not None for v in vals):
                series[t.columns[c]] = [float(v) for v in vals]
        logx = all(v > 0 for v in xs) and max(xs) / max(min(xs), 1e-12) >= 16
        charts.append(
            line_chart(xs, series, width=width, height=height,
                       title=t.title, logx=logx)
        )
    return "\n\n".join(charts)
