"""ASCII chart rendering.

Pure-text charts sized for a terminal: multi-series line charts on a
character grid with a y-axis scale, horizontal bar charts, and one-line
sparklines.  No external dependencies.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_chart", "bar_chart", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_SERIES_MARKS = "*o+x#@%&"


def _finite(values: Sequence[float]) -> list[float]:
    return [v for v in values if v == v and math.isfinite(v)]


def sparkline(values: Sequence[float]) -> str:
    """One-line chart: each value as one of eight block heights."""
    vals = list(values)
    finite = _finite(vals)
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in vals:
        if v != v or not math.isfinite(v):
            out.append(" ")
            continue
        level = 0 if span == 0 else int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not labels:
        raise ValueError("need at least one bar")
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = max(_finite(values) or [0.0])
    label_w = max(len(str(lb)) for lb in labels)
    lines = [title] if title else []
    for lb, v in zip(labels, values):
        filled = 0 if peak <= 0 else int(round(width * max(v, 0.0) / peak))
        lines.append(f"{str(lb):>{label_w}} | {'█' * filled}{' ' * (width - filled)} {v:g}")
    return "\n".join(lines)


def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    logx: bool = False,
) -> str:
    """Multi-series line chart on a character grid.

    Each series gets a marker from ``* o + x ...``; NaNs are skipped.
    ``logx`` spaces the x axis logarithmically (the paper's sweeps are
    powers of two).
    """
    if not series:
        raise ValueError("need at least one series")
    xs = [float(v) for v in x]
    if len(xs) < 2:
        raise ValueError("need at least two x values")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length {len(ys)} != x length {len(xs)}")
    if logx and any(v <= 0 for v in xs):
        raise ValueError("logx requires positive x values")
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")

    tx = [math.log2(v) for v in xs] if logx else xs
    x_lo, x_hi = min(tx), max(tx)
    all_y = _finite([v for ys in series.values() for v in ys])
    if not all_y:
        raise ValueError("no finite y values")
    y_lo = min(all_y + [0.0])
    y_hi = max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        mark = _SERIES_MARKS[si % len(_SERIES_MARKS)]
        for xi, yv in zip(tx, ys):
            if yv != yv or not math.isfinite(yv):
                continue
            col = int(round((xi - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines = [title] if title else []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:8.4g} ┤"
        elif i == height - 1:
            label = f"{y_lo:8.4g} ┤"
        else:
            label = " " * 8 + " │"
        lines.append(label + "".join(row))
    axis = " " * 9 + "└" + "─" * width
    lines.append(axis)
    x_left = f"{xs[0]:g}"
    x_right = f"{xs[-1]:g}"
    pad = width - len(x_left) - len(x_right)
    lines.append(" " * 10 + x_left + " " * max(1, pad) + x_right)
    legend = "   ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
