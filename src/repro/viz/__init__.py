"""Terminal visualisation: ASCII line and bar charts for figure series.

The offline environment has no plotting backend; these renderers turn the
experiments' series into readable terminal charts (the CLI's ``--plot``
flag), so the figures can be *seen*, not just tabulated.
"""

from repro.viz.ascii_charts import bar_chart, line_chart, sparkline

__all__ = ["line_chart", "bar_chart", "sparkline"]
