"""Shared utilities: argument validation, ASCII table rendering, logging."""

from repro.util.tables import TextTable, format_float, render_series
from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_power_of_two,
    ensure_array,
)

__all__ = [
    "TextTable",
    "format_float",
    "render_series",
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_power_of_two",
    "ensure_array",
]
