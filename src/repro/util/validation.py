"""Argument-validation helpers used across the model and simulator layers.

All helpers raise :class:`ValueError` (or :class:`TypeError` for wrong types)
with messages that name the offending parameter, so errors surface at the
public API boundary rather than deep inside a numpy expression.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "check_fraction",
    "check_positive",
    "check_positive_int",
    "check_power_of_two",
    "ensure_array",
]


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) if not inclusive).

    Parameters
    ----------
    value:
        The candidate fraction.
    name:
        Parameter name used in the error message.
    inclusive:
        When True (default) the endpoints 0 and 1 are allowed.

    Returns
    -------
    float
        ``value`` unchanged, for call-chaining.
    """
    v = float(value)
    if np.isnan(v):
        raise ValueError(f"{name} must not be NaN")
    if inclusive:
        if not (0.0 <= v <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not (0.0 < v < 1.0):
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return v


def check_positive(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` is > 0 (or >= 0 when ``allow_zero``)."""
    v = float(value)
    if np.isnan(v):
        raise ValueError(f"{name} must not be NaN")
    if allow_zero:
        if v < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif v <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return v


def check_positive_int(value: Any, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer >= ``minimum`` and return it."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if isinstance(value, (int, np.integer)):
        v = int(value)
    elif isinstance(value, float) and float(value).is_integer():
        v = int(value)
    else:
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if v < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return v


def check_power_of_two(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    v = check_positive_int(value, name)
    if v & (v - 1) != 0:
        raise ValueError(f"{name} must be a power of two, got {value!r}")
    return v


def ensure_array(values: float | Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    """Convert scalars/sequences to a float64 array, rejecting NaN entries."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if np.isnan(arr).any():
        raise ValueError(f"{name} contains NaN values")
    return arr
