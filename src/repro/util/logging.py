"""Minimal logging setup shared by the CLI and experiment drivers."""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the package logger or a child of it."""
    if name is None:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure(verbose: bool = False) -> None:
    """Attach a stderr handler to the package logger (idempotent)."""
    logger = get_logger()
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(name)s %(levelname)s: %(message)s"))
        logger.addHandler(handler)
    logger.setLevel(logging.DEBUG if verbose else logging.INFO)
