"""Plain-text table rendering for experiment reports.

The benchmark harness regenerates the paper's tables and figure series as
text; this module provides the shared renderer so every experiment prints in
a uniform, diff-friendly format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = ["TextTable", "format_float", "render_series"]


def format_float(value: float, *, digits: int = 4) -> str:
    """Format a float compactly: integers without trailing zeros, small
    fractions in scientific notation, everything else fixed-point."""
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    if value != 0 and abs(value) < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}g}"


@dataclass
class TextTable:
    """An ASCII table with a title, column headers, and typed rows.

    Example
    -------
    >>> t = TextTable(title="demo", columns=["app", "speedup"])
    >>> t.add_row(["kmeans", 15.8])
    >>> print(t.render())  # doctest: +SKIP
    """

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        """Append a row; floats are formatted via :func:`format_float`."""
        row = [
            format_float(v) if isinstance(v, float) else str(v)
            for v in values
        ]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table with box-drawing rules sized to the content."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(
            "|" + "|".join(f" {c:<{w}} " for c, w in zip(self.columns, widths)) + "|"
        )
        lines.append(sep)
        for row in self.rows:
            lines.append(
                "|" + "|".join(f" {c:<{w}} " for c, w in zip(row, widths)) + "|"
            )
        lines.append(sep)
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (header row first)."""
        def esc(cell: str) -> str:
            if "," in cell or '"' in cell:
                return '"' + cell.replace('"', '""') + '"'
            return cell

        out = [",".join(esc(c) for c in self.columns)]
        out.extend(",".join(esc(c) for c in row) for row in self.rows)
        return "\n".join(out)


def render_series(
    title: str,
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
) -> str:
    """Render one figure's data as a table: an x column plus one column per
    named series (exactly the rows a plot of the figure would consume)."""
    table = TextTable(title=title, columns=[x_name, *series.keys()])
    for i, x in enumerate(x_values):
        table.add_row([x, *(float(vals[i]) for vals in series.values())])
    return table.render()
