"""Declarative experiment specifications.

Every experiment is one :class:`ExperimentSpec`: an id, an *assemble*
function (the classic driver — a pure function from warm caches to an
:class:`~repro.experiments.report.ExperimentReport`), and zero or more
:class:`Stage`\\ s, each able to *declare* the experiment's expensive
work as content-hashed :class:`~repro.engine.units.WorkUnit`\\ s without
running anything.

The split is the engine's contract with the experiments layer:

* **declare** — enumerate every simulator sweep point, hardware
  execution and expensive model evaluation the experiment will need, as
  units whose keys equal the cache keys the assemble phase will look up;
* **assemble** — run the driver against caches the engine has warmed.
  With every unit resolved up front, assembly performs no simulator or
  hardware work of its own, so it is cheap, deterministic, and
  byte-identical between serial and parallel runs.

Stages take keyword options and, like drivers, different stages accept
different knobs — :meth:`ExperimentSpec.declare_units` filters one
shared option set per stage signature, so ``repro runall --scale 0.1``
can hand the same options to all 27 experiments.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.engine.units import WorkUnit
from repro.experiments.report import ExperimentReport

__all__ = ["Stage", "ExperimentSpec", "accepted_options", "filter_kwargs"]


def accepted_options(fn: Callable) -> "set[str] | None":
    """Keyword names ``fn`` accepts, or None when it takes ``**kwargs``."""
    params = inspect.signature(fn).parameters.values()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
        return None
    return {
        p.name
        for p in params
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                      inspect.Parameter.KEYWORD_ONLY)
    }


def filter_kwargs(fn: Callable, options: Mapping[str, object]) -> dict:
    """The subset of ``options`` that ``fn``'s signature accepts."""
    accepted = accepted_options(fn)
    if accepted is None:
        return dict(options)
    return {k: v for k, v in options.items() if k in accepted}


@dataclass(frozen=True)
class Stage:
    """One declarable slice of an experiment's work.

    ``declare`` takes keyword options (a subset of the driver's) and
    returns the stage's work units.  Its defaults must mirror the
    driver's, so declared keys match what assembly will look up.
    """

    name: str
    declare: Callable[..., "list[WorkUnit]"]

    def declare_units(self, **options) -> "list[WorkUnit]":
        return list(self.declare(**filter_kwargs(self.declare, options)))


@dataclass(frozen=True)
class ExperimentSpec:
    """An experiment: declare stages + an assemble function."""

    experiment_id: str
    assemble: Callable[..., ExperimentReport]
    stages: "tuple[Stage, ...]" = ()

    @property
    def declares_units(self) -> bool:
        """Whether this experiment has any declarable work at all."""
        return bool(self.stages)

    def declare_units(self, **options) -> "list[WorkUnit]":
        """Every unit the experiment will need, across all its stages.

        Options a stage does not understand are dropped per stage, so
        one option set can drive a heterogeneous batch of experiments.
        """
        units: "list[WorkUnit]" = []
        for stage in self.stages:
            units.extend(stage.declare_units(**options))
        return units

    def run(self, **options) -> ExperimentReport:
        """Assemble the report (options filtered to the driver's knobs)."""
        return self.assemble(**filter_kwargs(self.assemble, options))
