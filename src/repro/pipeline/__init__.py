"""Declarative experiment pipeline: declare work units, assemble reports.

The pipeline layer sits between the experiments and the execution engine
(see ``docs/architecture.md``).  Experiments describe themselves as
:class:`ExperimentSpec`\\ s — stages *declare* content-hashed work units
over any expensive backend (simulator sweeps and trace programs,
hardware-model and wall-clock executions, model-layer evaluations), and
an *assemble* function builds the report from warm caches.
:func:`resolve_units` is the one execution substrate all of them share:
memo -> disk store -> engine pool -> inline, in that order.
"""

from repro.pipeline.builders import (
    HARDWARE_MODEL,
    HARDWARE_PROCESS,
    MODEL_EVAL,
    MODEL_EVAL_GRID,
    SIM_PROGRAM,
    breakdown_from_payload,
    hardware_model_units,
    hardware_process_units,
    hardware_units,
    model_eval_grid_unit,
    model_eval_unit,
    sim_point_unit,
    sim_program_unit,
    sim_sweep_units,
)
from repro.pipeline.runtime import (
    cache_get,
    cache_put,
    clear_memo,
    memo_info,
    resolve_units,
)
from repro.pipeline.spec import (
    ExperimentSpec,
    Stage,
    accepted_options,
    filter_kwargs,
)

__all__ = [
    "ExperimentSpec",
    "Stage",
    "accepted_options",
    "filter_kwargs",
    "SIM_PROGRAM",
    "HARDWARE_MODEL",
    "HARDWARE_PROCESS",
    "MODEL_EVAL",
    "MODEL_EVAL_GRID",
    "sim_sweep_units",
    "sim_point_unit",
    "sim_program_unit",
    "hardware_units",
    "hardware_model_units",
    "hardware_process_units",
    "model_eval_unit",
    "model_eval_grid_unit",
    "breakdown_from_payload",
    "resolve_units",
    "cache_get",
    "cache_put",
    "clear_memo",
    "memo_info",
]
