"""Backend-tagged work-unit builders.

PR 2's engine knew exactly one unit kind — the simulator sweep point.
This module generalises unit construction over every expensive backend
an experiment can touch:

``sweep-point``
    One simulator run of a workload's own execution trace (delegates to
    :mod:`repro.experiments.simsweep`, whose keys double as the disk
    cache's).
``sim-program``
    One simulator run of a *hand-built* trace program (false-sharing
    layouts, locked-vs-privatised reductions).  The spec names the
    program builder by reference, so the unit pickles as data.
``hardware-model``
    One deterministic hardware-model execution
    (:func:`repro.hardware.executor.model_breakdown`).
``hardware-process``
    One wall-clock run on the actual host.  Inherently nondeterministic,
    so the unit is **not** disk-cacheable: it still dedupes and journals
    within a run, but never outlives one.
``model-eval``
    One expensive model-layer evaluation (e.g. a grid point of the
    conclusions sweep), named by function reference.  Not disk-cacheable
    either: analytic results depend on unversioned model code.
``model-eval-grid``
    One *vectorized* model evaluation over a whole parameter grid (the
    :mod:`repro.core.gridkernels` path): a single unit replaces a fan of
    per-point ``model-eval`` units — e.g. the conclusions experiment's
    48-point sweep is one numpy call.  Numpy arrays in the payload are
    lowered to plain lists (float64 round-trips exactly through JSON),
    so grid payloads journal and resume like any other unit.

Every builder hashes a canonical description of everything the payload
depends on into the unit key, so engine dedup identity, journal identity
and (where applicable) the disk-cache key coincide by construction.
"""

from __future__ import annotations

import importlib
from dataclasses import asdict
from typing import Callable, Iterable

from repro.engine.units import WorkUnit
from repro.experiments.store import SweepStore
from repro.hardware.machine_model import XEON_E5520, HardwareMachineModel
from repro.workloads.instrument import PhaseBreakdown

__all__ = [
    "SIM_PROGRAM",
    "HARDWARE_MODEL",
    "HARDWARE_PROCESS",
    "MODEL_EVAL",
    "MODEL_EVAL_GRID",
    "sim_sweep_units",
    "sim_point_unit",
    "sim_program_unit",
    "hardware_units",
    "hardware_model_units",
    "hardware_process_units",
    "model_eval_unit",
    "model_eval_grid_unit",
    "breakdown_from_payload",
    "execute_sim_program",
    "execute_hardware_model",
    "execute_hardware_process",
    "execute_model_eval",
    "execute_model_eval_grid",
]

SIM_PROGRAM = "sim-program"
HARDWARE_MODEL = "hardware-model"
HARDWARE_PROCESS = "hardware-process"
MODEL_EVAL = "model-eval"
MODEL_EVAL_GRID = "model-eval-grid"

#: bump when :func:`repro.hardware.executor.model_breakdown`'s pricing
#: semantics change, so persisted hardware-model results can never
#: satisfy a lookup from older code.
_HW_MODEL_VERSION = 1


def _resolve_ref(ref: str) -> Callable:
    """Import ``"package.module:function"`` back into the callable."""
    module, _, name = ref.partition(":")
    fn = getattr(importlib.import_module(module), name, None)
    if fn is None:
        raise LookupError(f"cannot resolve unit function reference {ref!r}")
    return fn


def func_ref(fn: Callable) -> str:
    """The picklable ``module:name`` reference for a module-level function."""
    return f"{fn.__module__}:{fn.__qualname__}"


def breakdown_from_payload(payload: dict) -> PhaseBreakdown:
    """Rebuild a phase breakdown from a unit payload (strict: resolved
    payloads come from the engine or a validated cache tier)."""
    from repro.experiments import simsweep

    restored = simsweep._breakdown_from_payload(payload)
    if restored is None:
        raise ValueError(f"malformed breakdown payload: {payload!r}")
    return restored


# ── simulator sweeps ──────────────────────────────────────────────────────


def sim_sweep_units(
    workload,
    thread_counts: Iterable[int] = (1, 2, 4, 8, 16),
    n_cores: int = 16,
    mem_scale: int = 2,
    config=None,
) -> "list[WorkUnit]":
    """A :func:`~repro.experiments.simsweep.simulate_breakdowns` sweep as
    units (same defaults, same keys)."""
    from repro.experiments import simsweep

    return simsweep.sweep_units(
        workload, thread_counts, n_cores=n_cores, mem_scale=mem_scale, config=config
    )


def sim_point_unit(workload, p: int, mem_scale: int, config) -> WorkUnit:
    """A single sweep point — for experiments whose machine configuration
    varies per point (ACMP vs symmetric, the crossover design sweep)."""
    from repro.experiments import simsweep

    return simsweep._unit_for(workload, p, mem_scale, config)


# ── hand-built trace programs ─────────────────────────────────────────────


def sim_program_unit(builder: Callable, kwargs: dict, config,
                     label: str = "") -> WorkUnit:
    """One simulator run of ``builder(**kwargs)`` on ``config``.

    ``builder`` must be a module-level function returning a
    :class:`~repro.simx.TraceProgram`; it crosses the process boundary by
    reference, its kwargs as plain data.
    """
    from repro.experiments import simsweep

    ref = func_ref(builder)
    key = SweepStore.key_for({
        "kind": SIM_PROGRAM,
        "sim_version": simsweep._SIM_VERSION,
        "builder": ref,
        "kwargs": dict(sorted(kwargs.items())),
        "machine": asdict(config),
    })
    return WorkUnit(
        kind=SIM_PROGRAM,
        key=key,
        spec=(ref, dict(kwargs), config),
        label=label or ref.rsplit(":", 1)[-1],
    )


def execute_sim_program(spec: tuple) -> dict:
    """Run one trace program and distill the stats experiments read."""
    from repro.simx import Machine

    ref, kwargs, config = spec
    res = Machine(config).run(_resolve_ref(ref)(**kwargs))
    return {
        "total_cycles": int(res.total_cycles),
        "invalidations": int(res.coherence.invalidations),
        "cache_to_cache": int(res.coherence.cache_to_cache),
        "parallel_wait_cycles": int(res.phase_stats.wait_cycles("parallel")),
        "reduction_cycles": int(res.phase_cycles("reduction")),
        "reduction_wait_cycles": int(res.phase_stats.wait_cycles("reduction")),
        "reduction_span_cycles": int(res.phase_wall_cycles("reduction")),
        # dispatch accounting (all zero under the pinned scheduler)
        "preemptions": int(res.sched.preemptions),
        "migrations": int(res.sched.migrations),
        "involuntary_wait_cycles": int(res.sched.involuntary_wait_cycles),
    }


# ── hardware executions ───────────────────────────────────────────────────


def hardware_model_units(
    workload,
    thread_counts: Iterable[int],
    model: HardwareMachineModel = XEON_E5520,
) -> "list[WorkUnit]":
    """Deterministic machine-model executions, one unit per thread count."""
    from repro.experiments import simsweep

    units = []
    for p in thread_counts:
        key = SweepStore.key_for({
            "kind": HARDWARE_MODEL,
            "hw_model_version": _HW_MODEL_VERSION,
            "workload": simsweep.workload_descriptor(workload),
            "threads": int(p),
            "model": asdict(model),
        })
        units.append(WorkUnit(
            kind=HARDWARE_MODEL, key=key, spec=(workload, int(p), model),
            label=f"hw-model:{workload.name}@p={p}",
        ))
    return units


def execute_hardware_model(spec: tuple) -> dict:
    from repro.experiments import simsweep
    from repro.hardware.executor import model_breakdown

    workload, p, model = spec
    return simsweep._breakdown_to_payload(model_breakdown(workload, p, model))


def hardware_process_units(workload, thread_counts: Iterable[int]) -> "list[WorkUnit]":
    """Wall-clock runs on the actual host — journaled, never disk-cached."""
    from repro.experiments import simsweep

    units = []
    for p in thread_counts:
        key = SweepStore.key_for({
            "kind": HARDWARE_PROCESS,
            "workload": simsweep.workload_descriptor(workload),
            "threads": int(p),
        })
        units.append(WorkUnit(
            kind=HARDWARE_PROCESS, key=key, spec=(workload, int(p)),
            label=f"hw-process:{workload.name}@p={p}", cacheable=False,
        ))
    return units


def execute_hardware_process(spec: tuple) -> dict:
    from repro.experiments import simsweep
    from repro.hardware.executor import process_breakdown

    workload, p = spec
    return simsweep._breakdown_to_payload(process_breakdown(workload, p))


def hardware_units(
    workload,
    thread_counts: Iterable[int],
    backend: str = "model",
    model: HardwareMachineModel = XEON_E5520,
) -> "list[WorkUnit]":
    """The hardware-side sweep on either backend (cf.
    :func:`repro.hardware.executor.execute_workload`)."""
    if backend == "model":
        return hardware_model_units(workload, thread_counts, model)
    if backend == "process":
        return hardware_process_units(workload, thread_counts)
    raise ValueError(f"backend must be 'model' or 'process', got {backend!r}")


# ── expensive model-layer evaluations ─────────────────────────────────────


def model_eval_unit(fn: Callable, kwargs: dict, label: str = "") -> WorkUnit:
    """One model-layer evaluation of ``fn(**kwargs)``.

    ``fn`` must be a module-level function returning a JSON-serialisable
    dict.  Results depend on unversioned model code, so the unit dedupes
    and journals but is never persisted in the disk store.
    """
    ref = func_ref(fn)
    key = SweepStore.key_for({
        "kind": MODEL_EVAL,
        "fn": ref,
        "kwargs": dict(sorted(kwargs.items())),
    })
    return WorkUnit(
        kind=MODEL_EVAL, key=key, spec=(ref, dict(kwargs)),
        label=label or ref.rsplit(":", 1)[-1], cacheable=False,
    )


def execute_model_eval(spec: tuple) -> dict:
    ref, kwargs = spec
    payload = _resolve_ref(ref)(**kwargs)
    if not isinstance(payload, dict):
        raise TypeError(
            f"model-eval function {ref} must return a dict payload, "
            f"got {type(payload).__name__}"
        )
    return payload


def model_eval_grid_unit(fn: Callable, kwargs: dict, label: str = "") -> WorkUnit:
    """One *vectorized* model evaluation over a whole parameter grid.

    ``fn`` must be a module-level function whose kwargs are plain data
    (floats, ints, strings, lists of floats) and whose return value is a
    dict of numpy arrays / nested dicts / scalars — the executor lowers
    arrays to lists so the payload journals as JSON.  One grid unit
    subsumes what would otherwise be a fan of per-point ``model-eval``
    units; like them it dedupes and journals but never hits the disk
    store (analytic results depend on unversioned model code).
    """
    ref = func_ref(fn)
    key = SweepStore.key_for({
        "kind": MODEL_EVAL_GRID,
        "fn": ref,
        "kwargs": dict(sorted(kwargs.items())),
    })
    return WorkUnit(
        kind=MODEL_EVAL_GRID, key=key, spec=(ref, dict(kwargs)),
        label=label or ref.rsplit(":", 1)[-1], cacheable=False,
    )


def _plainify(value):
    """Lower numpy containers/scalars to JSON-clean python equivalents.

    float64 → float is exact (same IEEE-754 double), so grid payloads
    survive the journal byte-identically to a fresh evaluation.
    """
    import numpy as np

    if isinstance(value, dict):
        return {k: _plainify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plainify(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def execute_model_eval_grid(spec: tuple) -> dict:
    ref, kwargs = spec
    payload = _resolve_ref(ref)(**kwargs)
    if not isinstance(payload, dict):
        raise TypeError(
            f"model-eval-grid function {ref} must return a dict payload, "
            f"got {type(payload).__name__}"
        )
    return _plainify(payload)
