"""Unit resolution: the one execution substrate every experiment shares.

:func:`resolve_units` turns declared work units into payloads through the
same tier order everywhere:

1. the in-process memo (sweep points use :mod:`~repro.experiments
   .simsweep`'s own memo so its hit counters and ``cache_info`` stay
   authoritative; other kinds share a generic memo here);
2. the on-disk :class:`~repro.experiments.store.SweepStore` — for
   disk-cacheable kinds only (``WorkUnit.cacheable``);
3. the ambient engine session, when one is installed — misses run on
   the worker pool (local processes, or remote ``repro worker``
   processes when the session listens via
   :class:`~repro.engine.remote.RemotePool` — the tier order is
   backend-agnostic), journaled write-ahead, and parallel resolution
   stays byte-identical to serial because callers rebuild outputs in
   their own iteration order;
4. inline execution in this process, when no session is installed.

:func:`cache_get` / :func:`cache_put` are the scheduler hooks
:func:`repro.engine.precompute` uses to warm every tier for *any* unit
kind — the piece that makes ``runall``'s single cross-experiment
precompute pass possible.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine import units as engine_units
from repro.engine.executors import SWEEP_POINT
from repro.engine.units import WorkUnit

__all__ = ["resolve_units", "cache_get", "cache_put", "clear_memo", "memo_info"]

#: unit.key -> payload, for every kind except sweep points (which live in
#: simsweep's richer memo keyed by workload identity)
_memo: "dict[str, dict]" = {}
_stats = {"memory_hits": 0, "disk_hits": 0, "misses": 0, "executed": 0}


def _disk():
    from repro.experiments import simsweep

    return simsweep.get_disk_store()


def cache_get(unit: WorkUnit) -> "dict | None":
    """Scheduler hook: look one unit up in the memo and (if cacheable)
    the disk store."""
    if unit.kind == SWEEP_POINT:
        from repro.experiments import simsweep

        return simsweep._unit_cache_get(unit)
    hit = _memo.get(unit.key)
    if hit is not None:
        _stats["memory_hits"] += 1
        return hit
    if unit.cacheable:
        disk = _disk()
        if disk is not None:
            payload = disk.get(unit.key)
            if payload is not None:
                _stats["disk_hits"] += 1
                _memo[unit.key] = payload
                return payload
    _stats["misses"] += 1
    return None


def cache_put(unit: WorkUnit, payload: dict) -> None:
    """Scheduler hook: write a fresh result into every applicable tier."""
    if unit.kind == SWEEP_POINT:
        from repro.experiments import simsweep

        return simsweep._unit_cache_put(unit, payload)
    _memo[unit.key] = payload
    if unit.cacheable:
        disk = _disk()
        if disk is not None:
            disk.put(unit.key, payload)


def resolve_units(units: Iterable[WorkUnit]) -> "dict[str, dict]":
    """Resolve units to ``{key: payload}`` (cache -> engine -> inline).

    With an ambient engine session installed (``repro.engine.session``,
    the CLI's ``--parallel``/``--run-id``), misses execute across the
    session's pool and settle through its journal; otherwise they run
    inline, hitting the same caches — results are identical either way.
    """
    units = list(units)
    from repro.experiments import simsweep

    sess = simsweep.get_engine()
    if sess is not None:
        return sess.run_units(units, cache_get=cache_get, cache_put=cache_put)
    out: "dict[str, dict]" = {}
    for unit in units:
        if unit.key in out:
            continue
        payload = cache_get(unit)
        if payload is None:
            payload = engine_units.execute(unit.kind, unit.spec)
            _stats["executed"] += 1
            cache_put(unit, payload)
        out[unit.key] = payload
    return out


def clear_memo() -> None:
    """Drop the generic memo and its counters (test isolation; sweep
    points are covered by ``simsweep.clear_cache``, which calls this)."""
    _memo.clear()
    for k in _stats:
        _stats[k] = 0


def memo_info() -> dict:
    """Counters and size of the generic (non-sweep) memo tier."""
    return {**_stats, "memory_entries": len(_memo)}
