"""Big-core ownership policies for asymmetric CMPs.

On the paper's ACMP (``MachineConfig.asymmetric``) core 0 is the large
core; which thread owns it during the serial/merge phases decides how much
of the sqrt-area speedup actually reaches the reduction.  This scheduler
extends round-robin with a per-``config.acmp_policy`` placement rule:

``first-come``
    Core 0 is just another core — pure round-robin with affinity.  The big
    core goes to whichever thread is dispatched onto it first.
``reduction-owns-big``
    Threads inside a serial phase (:data:`SERIAL_PHASES`) jump the run
    queue, take core 0 whenever it is free, and *evict* a non-serial
    occupant at its next operation boundary.  Threads outside a serial
    phase avoid core 0 unless it is the only free core.
``migrate-on-phase``
    All of the above, plus proactive migration: a dispatched thread
    *entering* a serial phase on a small core vacates it and requeues
    (dispatch will prefer core 0, paying ``migration_cost``), and a thread
    *leaving* its serial phases while on core 0 vacates the big core for
    the next merge.

Eviction counts as a preemption; voluntary phase migrations count only as
the migration they cause.  With ``acmp_policy="first-come"`` this class is
behaviourally identical to :class:`~repro.simx.sched.roundrobin.RoundRobinScheduler`.
"""

from __future__ import annotations

from repro.simx.config import MachineConfig
from repro.simx.sched.base import ThreadContext
from repro.simx.sched.roundrobin import RoundRobinScheduler

__all__ = ["AcmpScheduler", "SERIAL_PHASES"]

#: phase names treated as "the serial section" for big-core ownership
SERIAL_PHASES = frozenset({"init", "serial", "reduction", "merge"})

#: the large core on an asymmetric machine (MachineConfig.asymmetric
#: places the rl-BCE core at index 0)
BIG_CORE = 0


def _in_serial_phase(ctx: ThreadContext) -> bool:
    return any(p in SERIAL_PHASES for p in ctx.phase_stack)


class AcmpScheduler(RoundRobinScheduler):
    name = "acmp"
    wants_phase_events = True

    def __init__(self, config: MachineConfig):
        super().__init__(config)
        self.policy = config.acmp_policy

    # ── placement policy ──────────────────────────────────────────────────
    def _queue_order(self, ctx: ThreadContext) -> tuple:
        if self.policy == "first-come":
            return super()._queue_order(ctx)
        # serial-phase threads jump the queue (the merge must not starve
        # behind background work — the priority-inversion remedy)
        return (
            0 if _in_serial_phase(ctx) else 1,
            ctx.ready_at,
            ctx.ready_seq,
        )

    def _pick_core(self, ctx: ThreadContext) -> "tuple[int, int]":
        if self.policy == "first-come":
            return super()._pick_core(ctx)
        free = self._free
        if _in_serial_phase(ctx):
            if BIG_CORE in free:
                return BIG_CORE, free[BIG_CORE]
            return super()._pick_core(ctx)
        # outside serial phases keep the big core available for the merge
        small = [c for c in free if c != BIG_CORE]
        if not small:
            return super()._pick_core(ctx)
        last = ctx.core
        if last is not None and last in free and last != BIG_CORE:
            return last, free[last]
        core = min(small, key=lambda c: (free[c], c))
        return core, free[core]

    # ── eviction and phase migration ──────────────────────────────────────
    def on_charge(self, ctx: ThreadContext, cycles: int) -> None:
        if (
            self.policy != "first-come"
            and ctx.core == BIG_CORE
            and not _in_serial_phase(ctx)
            and any(
                _in_serial_phase(t) and t.ready_at <= ctx.clock
                for t in self._queue
            )
        ):
            # a merge thread is ready and the big core is squatted on:
            # evict the occupant at this operation boundary
            self._preempt(ctx)
            return
        super().on_charge(ctx, cycles)

    def on_phase_change(self, ctx: ThreadContext) -> None:
        if self.policy != "migrate-on-phase" or not ctx.dispatched:
            return
        serial = _in_serial_phase(ctx)
        if serial and ctx.core != BIG_CORE:
            # chase the big core: vacate and requeue (dispatch prefers
            # core 0 and charges migration_cost on the way there)
            self._release_core(ctx)
            self._enqueue(ctx)
        elif not serial and ctx.core == BIG_CORE:
            # leaving the merge: hand the big core back
            self._release_core(ctx)
            self._enqueue(ctx)
