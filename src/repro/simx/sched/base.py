"""Scheduler interface and the thread context it dispatches.

:class:`ThreadContext` (historically ``machine._ThreadCtx``) carries both
the trace-execution state the machine owns (ops cursor, clock, phase stack,
held locks) and the dispatch state the scheduler owns (current core,
quantum budget, run-queue position).  The machine drives the event loop and
notifies the scheduler at every state transition; the scheduler decides
placement and ordering.

Event-flow contract between machine and scheduler::

    next_thread()        -> the dispatched thread with the smallest clock
                            (dispatching queued threads first), or None
    on_block(ctx)        -> ctx left RUNNABLE (barrier/lock); its core is
                            free from ctx.clock on
    on_unblock(ctx)      -> ctx is RUNNABLE again at ctx.clock; re-enters
                            the run queue
    on_done(ctx)         -> ctx finished its trace; frees its core
    on_charge(ctx, c)    -> ctx consumed c busy cycles (quantum accounting;
                            only called when ``uses_quantum``)
    on_phase_change(ctx) -> ctx pushed/popped a phase (only called when
                            ``wants_phase_events``)

Preemption and migration are decided at *operation boundaries*: trace ops
are atomic, so a quantum expires after the op that crossed it, and a
migrating thread moves between ops.  All policies are deterministic —
identical configs and programs produce identical schedules, which is what
lets scheduled results enter the content-hashed sweep caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterator

from repro.simx.config import MachineConfig
from repro.simx.stats import SchedStats

__all__ = [
    "Scheduler",
    "ThreadContext",
    "ThreadState",
    "WaitCharge",
    "build_scheduler",
    "supports_scheduling",
]


class ThreadState(Enum):
    RUNNABLE = "runnable"
    AT_BARRIER = "barrier"
    WAIT_LOCK = "lock"
    DONE = "done"


@dataclass
class ThreadContext:
    """Execution and dispatch bookkeeping for one thread."""

    tid: int
    ops: Iterator
    clock: int = 0
    state: ThreadState = ThreadState.RUNNABLE
    phase_stack: list[str] = field(default_factory=list)
    held_locks: set[int] = field(default_factory=set)
    barrier_id: "int | None" = None
    # ── scheduler-owned state ────────────────────────────────────────────
    #: core currently (or most recently) hosting the thread; None before
    #: the first dispatch.  Affinity and migration cost key off this.
    core: "int | None" = None
    #: currently placed on a core (dispatched threads are always RUNNABLE)
    dispatched: bool = False
    #: busy cycles left in the current quantum slice (None = unlimited)
    quantum_left: "int | None" = None
    #: simulated time the thread last (re)entered the run queue
    ready_at: int = 0
    #: tie-break for threads queued at the same simulated time
    ready_seq: int = 0
    #: per-thread retire counter — under time-multiplexing the per-core
    #: counters mix threads, so the machine accounts retirement here
    instructions: int = 0

    def current_phase(self) -> str:
        return self.phase_stack[-1] if self.phase_stack else "(unattributed)"


#: callback the machine hands to :meth:`Scheduler.attach`; charges queue
#: delay to the thread's current phase as wait time
WaitCharge = Callable[[ThreadContext, int], None]


class Scheduler:
    """Dispatch policy: which runnable thread advances next, on which core."""

    name = "?"
    #: whether the machine should report busy cycles via :meth:`on_charge`
    uses_quantum = False
    #: whether the machine should report phase pushes/pops via
    #: :meth:`on_phase_change`
    wants_phase_events = False

    def __init__(self, config: MachineConfig):
        self.config = config
        self.stats = SchedStats(scheduler=self.name)

    def attach(
        self, threads: "list[ThreadContext]", charge_wait: WaitCharge
    ) -> None:
        raise NotImplementedError

    def next_thread(self) -> "ThreadContext | None":
        """The thread to advance next, or None when nothing is runnable."""
        raise NotImplementedError

    def on_block(self, ctx: ThreadContext) -> None:
        pass

    def on_unblock(self, ctx: ThreadContext) -> None:
        pass

    def on_done(self, ctx: ThreadContext) -> None:
        pass

    def on_charge(self, ctx: ThreadContext, cycles: int) -> None:
        pass

    def on_phase_change(self, ctx: ThreadContext) -> None:
        pass


def supports_scheduling(config: MachineConfig) -> bool:
    """Whether the fused engines' dispatch assumption holds.

    The fast and batch engines execute private runs without a scheduler
    pass, which is only equivalent to the event loop under pinned
    one-thread-per-core dispatch.  Any time-multiplexing policy must fall
    back to the op-at-a-time reference engine.
    """
    return config.scheduler == "pinned"


def build_scheduler(config: MachineConfig) -> Scheduler:
    """Instantiate the scheduler named by ``config.scheduler``."""
    from repro.simx.sched.acmp import AcmpScheduler
    from repro.simx.sched.pinned import PinnedScheduler
    from repro.simx.sched.roundrobin import RoundRobinScheduler

    if config.scheduler == "pinned":
        return PinnedScheduler(config)
    if config.scheduler == "round-robin":
        return RoundRobinScheduler(config)
    if config.scheduler == "acmp":
        return AcmpScheduler(config)
    raise ValueError(f"unknown scheduler {config.scheduler!r}")
