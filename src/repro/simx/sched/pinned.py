"""One thread per core, no time-multiplexing.

This is the paper's execution model and the pre-refactor dispatch rule,
preserved cycle-identically: thread *i* is pinned to core *i* for the whole
run, and the event loop always advances the runnable thread with the
smallest local clock (ties to the lowest thread id).  Nothing is ever
preempted, queued, or migrated, so every :class:`~repro.simx.stats.SchedStats`
counter stays zero and the fused engines remain safe
(:func:`~repro.simx.sched.base.supports_scheduling`).
"""

from __future__ import annotations

from operator import attrgetter

from repro.simx.sched.base import Scheduler, ThreadContext, ThreadState, WaitCharge

__all__ = ["PinnedScheduler"]

_by_clock = attrgetter("clock")


class PinnedScheduler(Scheduler):
    name = "pinned"

    def attach(
        self, threads: "list[ThreadContext]", charge_wait: WaitCharge
    ) -> None:
        self._threads = threads
        for ctx in threads:
            ctx.core = ctx.tid
            ctx.dispatched = True

    def next_thread(self) -> "ThreadContext | None":
        runnable = [
            t for t in self._threads if t.state is ThreadState.RUNNABLE
        ]
        if not runnable:
            return None
        return min(runnable, key=_by_clock)
