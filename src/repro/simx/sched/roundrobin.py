"""Time-multiplexing round-robin dispatch over a FIFO run queue.

Threads are dispatched onto cores from a run queue ordered by the
simulated time they became ready (FIFO in *simulated* time, not in event
processing order).  A dispatched thread runs until it blocks, finishes, or
— when ``config.quantum`` is set — exhausts its slice while another ready
thread is waiting, in which case it is preempted at the next operation
boundary and requeued.  Dispatch prefers the thread's previous core when
that core is free (cache affinity); landing anywhere else charges
``config.migration_cost`` cycles and counts a migration.  Queue delay and
migration cost are charged to the thread's current phase as wait time and
accumulated in ``SchedStats.involuntary_wait_cycles``.

Conservative-dispatch rule
--------------------------
The machine is a conservative discrete-event simulation: future wakeups
are only created by currently dispatched threads, so every future
run-queue arrival happens at or after the *horizon* — the minimum clock
among dispatched threads.  A queued thread is therefore only committed to
a core once its start time is ``<= horizon`` (no later arrival could have
claimed the core earlier); with nothing dispatched the horizon is infinite
and the earliest-ready thread is placed immediately.  This keeps the
schedule deterministic and independent of event processing order.

Parity guarantee (enforced by ``tests/sched/``): with
``n_threads <= n_cores`` the affinity rule gives every thread its own
core, the queue never holds a ready thread while a core is occupied, and
the schedule — and every cycle count — is identical to
:class:`~repro.simx.sched.pinned.PinnedScheduler`.
"""

from __future__ import annotations

from repro.simx.config import MachineConfig
from repro.simx.sched.base import Scheduler, ThreadContext, WaitCharge

__all__ = ["RoundRobinScheduler"]

_INF = float("inf")


class RoundRobinScheduler(Scheduler):
    name = "round-robin"
    uses_quantum = True

    def __init__(self, config: MachineConfig):
        super().__init__(config)
        self.quantum = config.quantum
        self.migration_cost = config.migration_cost
        self.n_cores = config.n_cores
        #: free cores: id -> simulated time the core became free
        self._free: dict[int, int] = {}
        #: runnable threads not currently placed on a core
        self._queue: list[ThreadContext] = []
        self._seq = 0

    def attach(
        self, threads: "list[ThreadContext]", charge_wait: WaitCharge
    ) -> None:
        self._threads = threads
        self._charge_wait = charge_wait
        self._free = {core: 0 for core in range(self.n_cores)}
        self._queue = []
        for ctx in threads:
            self._enqueue(ctx)

    # ── run-queue plumbing ────────────────────────────────────────────────
    def _enqueue(self, ctx: ThreadContext) -> None:
        ctx.ready_at = ctx.clock
        ctx.ready_seq = self._seq
        self._seq += 1
        ctx.dispatched = False
        self._queue.append(ctx)

    def _release_core(self, ctx: ThreadContext) -> None:
        if ctx.dispatched:
            ctx.dispatched = False
            self._free[ctx.core] = ctx.clock

    def _preempt(self, ctx: ThreadContext) -> None:
        self.stats.preemptions += 1
        self._release_core(ctx)
        self._enqueue(ctx)

    # ── policy hooks (specialised by AcmpScheduler) ───────────────────────
    def _queue_order(self, ctx: ThreadContext) -> tuple:
        return (ctx.ready_at, ctx.ready_seq)

    def _pick_core(self, ctx: ThreadContext) -> "tuple[int, int]":
        """(core, freed_at) to dispatch ``ctx`` on.  Affinity first, else
        earliest-freed; must return a core whenever one is free."""
        free = self._free
        last = ctx.core
        if last is not None and last in free:
            return last, free[last]
        core = min(free, key=lambda c: (free[c], c))
        return core, free[core]

    # ── dispatch ──────────────────────────────────────────────────────────
    def _start_time(self, ctx: ThreadContext, core: int, freed_at: int) -> int:
        start = max(ctx.clock, freed_at)
        if ctx.core is not None and core != ctx.core:
            start += self.migration_cost
        return start

    def _dispatch(self) -> None:
        while self._queue and self._free:
            horizon = min(
                (t.clock for t in self._threads if t.dispatched),
                default=_INF,
            )
            head = min(self._queue, key=self._queue_order)
            core, freed_at = self._pick_core(head)
            start = self._start_time(head, core, freed_at)
            if start > horizon:
                # every future unblock lands at >= horizon, so a thread
                # that is not queued yet could still claim this core
                # before `start`: defer until the horizon catches up
                # (FIFO — no later-queued thread may overtake the head)
                return
            self._place(head, core, start)

    def _place(self, ctx: ThreadContext, core: int, start: int) -> None:
        self._queue.remove(ctx)
        del self._free[core]
        if ctx.core is not None and core != ctx.core:
            self.stats.migrations += 1
        wait = start - ctx.clock
        if wait:
            self.stats.involuntary_wait_cycles += wait
            self._charge_wait(ctx, wait)
            ctx.clock = start
        ctx.core = core
        ctx.dispatched = True
        ctx.quantum_left = self.quantum
        self.stats.dispatches += 1

    # ── Scheduler interface ───────────────────────────────────────────────
    def next_thread(self) -> "ThreadContext | None":
        if self._queue:
            self._dispatch()
        best = None
        for t in self._threads:
            if t.dispatched and (best is None or t.clock < best.clock):
                best = t
        return best

    def on_block(self, ctx: ThreadContext) -> None:
        self._release_core(ctx)

    def on_done(self, ctx: ThreadContext) -> None:
        self._release_core(ctx)

    def on_unblock(self, ctx: ThreadContext) -> None:
        self._enqueue(ctx)

    def on_charge(self, ctx: ThreadContext, cycles: int) -> None:
        if self.quantum is None:
            return
        left = ctx.quantum_left - cycles
        if left > 0:
            ctx.quantum_left = left
            return
        # slice expired at ctx.clock: yield only when a ready thread waits
        if any(t.ready_at <= ctx.clock for t in self._queue):
            self._preempt(ctx)
        else:
            ctx.quantum_left = self.quantum
