"""Pluggable thread-dispatch layer for the simulated CMP.

The machine (:mod:`repro.simx.machine`) executes trace operations; *which*
runnable thread advances next, and on *which* core, is delegated to a
:class:`Scheduler`.  Three policies ship:

* :class:`PinnedScheduler` — the paper's one-thread-per-core model and the
  pre-refactor dispatch rule, kept cycle-identical (always advance the
  runnable thread with the smallest local clock; thread *i* owns core *i*).
* :class:`RoundRobinScheduler` — time-multiplexing over a FIFO run queue
  with per-slice ``quantum`` preemption, last-core affinity, and a
  configurable ``migration_cost``; allows oversubscription
  (``n_threads > n_cores``).
* :class:`AcmpScheduler` — round-robin plus a big-core ownership policy for
  asymmetric machines (who gets core 0 during the serial/merge phases).

The fused engines (:mod:`repro.simx.fastpath`, :mod:`repro.simx.batch`)
interleave work without consulting a scheduler, so they are only safe under
pinned dispatch — :func:`supports_scheduling` is the seam they gate on, and
any time-multiplexing policy falls back to the op-at-a-time reference
engine (differentially tested in ``tests/sched/``).
"""

from __future__ import annotations

from repro.simx.sched.acmp import SERIAL_PHASES, AcmpScheduler
from repro.simx.sched.base import (
    Scheduler,
    ThreadContext,
    ThreadState,
    build_scheduler,
    supports_scheduling,
)
from repro.simx.sched.pinned import PinnedScheduler
from repro.simx.sched.roundrobin import RoundRobinScheduler

__all__ = [
    "AcmpScheduler",
    "PinnedScheduler",
    "RoundRobinScheduler",
    "SERIAL_PHASES",
    "Scheduler",
    "ThreadContext",
    "ThreadState",
    "build_scheduler",
    "supports_scheduling",
]
