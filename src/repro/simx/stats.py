"""Per-phase cycle accounting (the simulator's instrumentation).

Workload traces bracket regions with :class:`~repro.simx.trace.PhaseBegin`
and :class:`~repro.simx.trace.PhaseEnd`; every cycle a thread spends inside
the bracket is attributed to that phase, split into *busy* cycles (executing
operations) and *wait* cycles (blocked at barriers or locks).  This mirrors
how the paper times "the individual sections of the application" in SESC.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["PhaseStats", "SchedStats"]


@dataclass
class SchedStats:
    """Thread-dispatch accounting (repro.simx.sched).

    ``dispatches`` — times a thread was placed on a core (includes the
    initial placement); ``preemptions`` — involuntary context switches
    (quantum expiry or big-core eviction); ``migrations`` — dispatches onto
    a different core than the thread's previous one; ``involuntary_wait_cycles``
    — cycles runnable threads spent queued waiting for a core (charged as
    phase wait time too).  All zero under the pinned scheduler.
    """

    scheduler: str = "pinned"
    dispatches: int = 0
    preemptions: int = 0
    migrations: int = 0
    involuntary_wait_cycles: int = 0


@dataclass
class PhaseStats:
    """Cycle totals per phase, per thread.

    ``busy[phase][tid]`` — cycles executing operations inside the phase;
    ``wait[phase][tid]`` — cycles blocked inside the phase;
    ``spans[phase]`` — (earliest begin, latest end) wall-clock bounds.
    """

    busy: dict[str, dict[int, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )
    wait: dict[str, dict[int, int]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(int))
    )
    spans: dict[str, tuple[int, int]] = field(default_factory=dict)

    # ── recording ─────────────────────────────────────────────────────────
    def add_busy(self, phase: str, thread_id: int, cycles: int) -> None:
        if cycles:
            self.busy[phase][thread_id] += cycles

    def add_wait(self, phase: str, thread_id: int, cycles: int) -> None:
        if cycles:
            self.wait[phase][thread_id] += cycles

    def note_begin(self, phase: str, clock: int) -> None:
        lo, hi = self.spans.get(phase, (clock, clock))
        self.spans[phase] = (min(lo, clock), max(hi, clock))

    def note_end(self, phase: str, clock: int) -> None:
        lo, hi = self.spans.get(phase, (clock, clock))
        self.spans[phase] = (min(lo, clock), max(hi, clock))

    # ── queries ───────────────────────────────────────────────────────────
    def phases(self) -> list[str]:
        """All phases seen, sorted."""
        return sorted(set(self.busy) | set(self.wait) | set(self.spans))

    def busy_cycles(self, phase: str, thread_id: "int | None" = None) -> int:
        """Busy cycles in a phase — one thread's, or summed over threads."""
        per_thread = self.busy.get(phase, {})
        if thread_id is not None:
            return per_thread.get(thread_id, 0)
        return sum(per_thread.values())

    def wait_cycles(self, phase: str, thread_id: "int | None" = None) -> int:
        """Wait cycles in a phase — one thread's, or summed over threads."""
        per_thread = self.wait.get(phase, {})
        if thread_id is not None:
            return per_thread.get(thread_id, 0)
        return sum(per_thread.values())

    def span_cycles(self, phase: str) -> int:
        """Wall-clock extent of the phase (latest end − earliest begin)."""
        if phase not in self.spans:
            return 0
        lo, hi = self.spans[phase]
        return hi - lo

    def merge_thread_busy(self, phase: str) -> dict[int, int]:
        """Copy of the per-thread busy map for a phase."""
        return dict(self.busy.get(phase, {}))
