"""Trace program serialisation (JSONL).

Traces are the simulator's interface; being able to dump and reload them
makes runs inspectable and lets users archive a workload's compiled form
(or hand-craft programs) without touching the workload layer.

Format: one JSON object per line.

* line 1 — header: ``{"kind": "program", "name": ..., "n_threads": ...,
  "metadata": {...}}``
* then one line per op: ``{"t": thread_id, "op": "C|L|S|B|K|U|PB|PE",
  ...fields}`` in program order per thread (threads may interleave; order
  within a thread id is preserved).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.simx.trace import (
    Barrier,
    Compute,
    Load,
    Lock,
    Op,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
    Unlock,
)

__all__ = ["dump_program", "load_program", "op_to_record", "op_from_record"]


def op_to_record(tid: int, op: Op) -> dict:
    """One op as a JSON-compatible record."""
    if isinstance(op, Compute):
        return {"t": tid, "op": "C", "n": op.instructions}
    if isinstance(op, Load):
        return {"t": tid, "op": "L", "a": op.addr}
    if isinstance(op, Store):
        return {"t": tid, "op": "S", "a": op.addr}
    if isinstance(op, Barrier):
        return {"t": tid, "op": "B", "id": op.barrier_id}
    if isinstance(op, Lock):
        return {"t": tid, "op": "K", "id": op.lock_id}
    if isinstance(op, Unlock):
        return {"t": tid, "op": "U", "id": op.lock_id}
    if isinstance(op, PhaseBegin):
        return {"t": tid, "op": "PB", "p": op.phase}
    if isinstance(op, PhaseEnd):
        return {"t": tid, "op": "PE", "p": op.phase}
    raise TypeError(f"unknown op {op!r}")


def op_from_record(rec: dict) -> tuple[int, Op]:
    """Inverse of :func:`op_to_record`."""
    kind = rec.get("op")
    tid = rec["t"]
    if kind == "C":
        return tid, Compute(rec["n"])
    if kind == "L":
        return tid, Load(rec["a"])
    if kind == "S":
        return tid, Store(rec["a"])
    if kind == "B":
        return tid, Barrier(rec["id"])
    if kind == "K":
        return tid, Lock(rec["id"])
    if kind == "U":
        return tid, Unlock(rec["id"])
    if kind == "PB":
        return tid, PhaseBegin(rec["p"])
    if kind == "PE":
        return tid, PhaseEnd(rec["p"])
    raise ValueError(f"unknown op kind {kind!r} in {rec}")


def dump_program(program: TraceProgram, path: "str | Path") -> Path:
    """Write a trace program to a JSONL file; returns the path.

    Consumes the program's op iterables (generators are materialised into
    the file, so reload to run).
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w") as fh:
        fh.write(json.dumps({
            "kind": "program",
            "name": program.name,
            "n_threads": program.n_threads,
            "metadata": program.metadata,
        }) + "\n")
        for thread in program.threads:
            for op in thread:
                fh.write(json.dumps(op_to_record(thread.thread_id, op)) + "\n")
    return p


def load_program(path: "str | Path") -> TraceProgram:
    """Read a trace program back from a JSONL file."""
    p = Path(path)
    with p.open() as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{p}: empty trace file")
        header = json.loads(header_line)
        if header.get("kind") != "program":
            raise ValueError(f"{p}: missing program header")
        ops_by_thread: dict[int, list[Op]] = {
            t: [] for t in range(header["n_threads"])
        }
        for line in fh:
            line = line.strip()
            if not line:
                continue
            tid, op = op_from_record(json.loads(line))
            if tid not in ops_by_thread:
                raise ValueError(
                    f"{p}: op for thread {tid} outside 0..{header['n_threads'] - 1}"
                )
            ops_by_thread[tid].append(op)
    return TraceProgram(
        name=header["name"],
        threads=[
            ThreadTrace(tid, ops) for tid, ops in sorted(ops_by_thread.items())
        ],
        metadata=header.get("metadata", {}),
    )
