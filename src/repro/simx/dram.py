"""Banked DRAM with row-buffer locality.

The baseline machine charges a flat ``memory_latency`` per L2 miss.  With
``MachineConfig(dram="banked")`` misses go through this model instead:
memory is split into banks (low-order line-address interleaving), each
bank keeps its last-activated row open, and an access pays

* ``row_hit_latency``  when it falls in the open row (column access only);
* ``row_miss_latency`` when the bank must precharge + activate a new row.

Streaming scans (the parallel phase's point traversal) enjoy row hits;
the master's merge walk over p scattered partial buffers hops rows —
another mechanical source of the superlinear merge cost the paper
attributes to memory behaviour.
"""

from __future__ import annotations

from repro.util.validation import check_positive_int

__all__ = ["DramModel"]


class DramModel:
    """Open-row, bank-interleaved DRAM timing."""

    def __init__(
        self,
        n_banks: int = 8,
        row_bytes: int = 2048,
        line_size: int = 64,
        row_hit_latency: int = 60,
        row_miss_latency: int = 160,
    ):
        self.n_banks = check_positive_int(n_banks, "n_banks")
        self.row_bytes = check_positive_int(row_bytes, "row_bytes")
        self.line_size = check_positive_int(line_size, "line_size")
        self.row_hit_latency = check_positive_int(row_hit_latency, "row_hit_latency")
        self.row_miss_latency = check_positive_int(row_miss_latency, "row_miss_latency")
        if row_bytes % line_size != 0:
            raise ValueError(
                f"row_bytes {row_bytes} must be a multiple of line_size {line_size}"
            )
        self.lines_per_row = row_bytes // line_size
        self._open_rows: dict[int, int] = {}
        self.row_hits = 0
        self.row_misses = 0

    def bank_of(self, line_addr: int) -> int:
        """Bank selection: low-order line-address interleaving."""
        return line_addr % self.n_banks

    def row_of(self, line_addr: int) -> int:
        """Row index within the bank."""
        return (line_addr // self.n_banks) // self.lines_per_row

    def access(self, line_addr: int) -> int:
        """Latency of fetching one line; updates the bank's open row."""
        if line_addr < 0:
            raise ValueError(f"line_addr must be >= 0, got {line_addr}")
        bank = self.bank_of(line_addr)
        row = self.row_of(line_addr)
        if self._open_rows.get(bank) == row:
            self.row_hits += 1
            return self.row_hit_latency
        self._open_rows[bank] = row
        self.row_misses += 1
        return self.row_miss_latency

    @property
    def row_hit_rate(self) -> float:
        """Row hits / accesses since construction (0 when unused)."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
