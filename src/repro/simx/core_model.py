"""Per-core timing model.

Translates trace operations into cycles:

* :class:`~repro.simx.trace.Compute` bursts are timed by the core's
  effective IPC (Table I's pipeline widths enter through
  :attr:`~repro.simx.config.CoreConfig.effective_ipc`);
* loads and stores are delegated to the MESI coherence controller, which
  returns the full hierarchy latency.

Synchronisation and phase markers are handled by the machine scheduler, not
here.
"""

from __future__ import annotations

import math

from repro.simx.coherence import CoherenceController
from repro.simx.config import CoreConfig

__all__ = ["CoreModel"]


class CoreModel:
    """The timing model for one core.

    ``perf_factor`` scales compute throughput (a 4-BCE core under the
    sqrt-area law has factor 2); memory latencies are not scaled — the
    cache hierarchy and interconnect are no faster for a bigger core.
    """

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        coherence: CoherenceController,
        perf_factor: float = 1.0,
    ):
        if perf_factor <= 0:
            raise ValueError(f"perf_factor must be > 0, got {perf_factor}")
        self.core_id = core_id
        self.config = config
        self.coherence = coherence
        self.perf_factor = perf_factor
        self.instructions_retired = 0
        self.loads = 0
        self.stores = 0

    def compute_cycles(self, instructions: int) -> int:
        """Cycles to retire a burst of non-memory instructions."""
        if instructions < 0:
            raise ValueError(f"instructions must be >= 0, got {instructions}")
        self.instructions_retired += instructions
        return math.ceil(instructions / (self.config.effective_ipc * self.perf_factor))

    def load_cycles(self, addr: int, now: int = 0) -> int:
        """Cycles for a load through the cache hierarchy."""
        self.loads += 1
        self.instructions_retired += 1
        return self.coherence.read(self.core_id, addr, now)

    def store_cycles(self, addr: int, now: int = 0) -> int:
        """Cycles for a store through the cache hierarchy."""
        self.stores += 1
        self.instructions_retired += 1
        return self.coherence.write(self.core_id, addr, now)
