"""Batched fast-path execution: fuse runs of thread-private operations.

The reference scheduler in :mod:`repro.simx.machine` advances one operation
at a time, paying Python dispatch, a coherence-stats snapshot and a
scheduler pass per op.  Most cycles in the paper's workloads come from long
runs of *thread-private* work — a thread streaming its own point partition
and partial buffers between synchronisation points — where none of that
machinery can observe anything: no other core ever touches those lines, so
no protocol event involving another thread can occur.

This module proves that property ahead of time and packages such runs into
:class:`Burst` objects the machine executes in a single scheduler step:

* a whole-program pass classifies every cache line by its accessor set —
  a line touched by more than one thread is *shared*, everything else is
  *private* to its single accessor;
* each thread's trace is partitioned into maximal runs of ``Compute`` ops
  and ``Load``/``Store`` ops on that thread's private lines; any other
  operation (synchronisation, phase markers, shared accesses) terminates
  the run;
* at execution time a burst advances the thread clock, cache state and
  counters through the streamlined private entry points of
  :class:`~repro.simx.coherence.CoherenceController`, bailing back to the
  reference path *before* any access whose L1 fill would evict a shared
  line (the one way a private run can become visible to other cores).

Fusion is only attempted when the machine configuration makes burst
execution order-independent: a stateless interconnect (no bus
arbitration queue), flat DRAM (the banked model keeps open-row state
shared across cores) and no next-line prefetching (a prefetch can reach
into a neighbouring thread's region).  Under those gates a fused burst is
cycle- and stats-identical to the reference interleaving — enforced by
``tests/simx/test_fastpath_differential.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simx.config import MachineConfig
from repro.simx.trace import Compute, Load, Store, TraceProgram

__all__ = ["Burst", "supports_fast_path", "compile_program", "CompiledProgram"]

#: do not wrap runs shorter than this — the per-burst setup (one stats
#: snapshot + one phase charge) costs about as much as one reference op.
MIN_RUN = 2


@dataclass(frozen=True)
class Burst:
    """A maximal run of fusable ops, executed in one scheduler step.

    ``ops`` contains only ``Compute`` and ``Load``/``Store`` on lines
    private to the owning thread.  ``n_mem`` is precomputed so the machine
    can skip the coherence snapshot for pure-compute bursts.
    """

    ops: tuple
    n_mem: int


@dataclass(frozen=True)
class CompiledProgram:
    """A program lowered for fused execution.

    ``thread_ops[tid]`` mixes plain ops with :class:`Burst` entries;
    ``shared_lines`` is the eviction bail-out set (lines visible to more
    than one thread).
    """

    thread_ops: tuple
    shared_lines: frozenset
    n_bursts: int
    n_fused_ops: int


def supports_fast_path(config: MachineConfig, max_cycles: "int | None" = None) -> bool:
    """Whether fused bursts are provably order-independent for this config.

    The gates (beyond the ``fast_path`` knob itself):

    * ``max_cycles`` unset — the watchdog checks the clock between single
      ops, which a fused burst would overshoot;
    * no bus arbitration (``bus_occupancy``) — a contended bus serialises
      transactions in global arrival order;
    * flat DRAM — the banked model's open-row state couples cores;
    * no next-line prefetch — a prefetch crosses into neighbouring lines
      the privacy analysis did not attribute to this thread;
    * pinned dispatch (:func:`repro.simx.sched.supports_scheduling`) — a
      time-multiplexing scheduler interleaves threads on shared cores,
      which fused bursts bypass.
    """
    from repro.simx.sched import supports_scheduling

    return (
        config.fast_path
        and max_cycles is None
        and config.dram == "flat"
        and not config.prefetch_next_line
        and not (config.interconnect == "bus" and config.bus_occupancy > 0)
        and supports_scheduling(config)
    )


def compile_program(program: TraceProgram, line_size: int) -> CompiledProgram:
    """Materialise a program and fuse its private runs into bursts.

    Consumes each thread's op iterable (as a normal run would) and returns
    the lowered per-thread op lists plus the shared-line set.
    """
    op_lists = [list(t.ops) for t in program.threads]

    # pass 1: accessor analysis — who touches each line?
    owner: dict[int, int] = {}
    _SHARED = -1
    for tid, ops in enumerate(op_lists):
        for op in ops:
            t = type(op)
            if t is Load or t is Store:
                line = op.addr // line_size
                prev = owner.setdefault(line, tid)
                if prev != tid:
                    owner[line] = _SHARED
    shared_lines = frozenset(line for line, o in owner.items() if o == _SHARED)

    # pass 2: fuse maximal private runs per thread
    n_bursts = 0
    n_fused = 0
    compiled: list[list] = []
    for tid, ops in enumerate(op_lists):
        out: list = []
        run: list = []
        n_mem = 0
        for op in ops:
            t = type(op)
            if t is Compute:
                run.append(op)
            elif (t is Load or t is Store) and op.addr // line_size not in shared_lines:
                run.append(op)
                n_mem += 1
            else:
                if len(run) >= MIN_RUN:
                    out.append(Burst(tuple(run), n_mem))
                    n_bursts += 1
                    n_fused += len(run)
                else:
                    out.extend(run)
                run = []
                n_mem = 0
                out.append(op)
        if len(run) >= MIN_RUN:
            out.append(Burst(tuple(run), n_mem))
            n_bursts += 1
            n_fused += len(run)
        else:
            out.extend(run)
        compiled.append(out)

    return CompiledProgram(
        thread_ops=tuple(compiled),
        shared_lines=shared_lines,
        n_bursts=n_bursts,
        n_fused_ops=n_fused,
    )
