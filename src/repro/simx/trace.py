"""Operation traces: the simulator's input language.

A workload compiles each thread's execution into a sequence of operations:

* :class:`Compute` — a burst of ``instructions`` arithmetic/control
  instructions, timed by the core's effective IPC;
* :class:`Load` / :class:`Store` — a data access to a byte address, timed
  through the cache hierarchy and MESI coherence at line granularity;
* :class:`Barrier` — all-thread synchronisation point;
* :class:`Lock` / :class:`Unlock` — mutual exclusion;
* :class:`PhaseBegin` / :class:`PhaseEnd` — instrumentation markers; every
  cycle a thread spends between the markers is attributed to that phase
  (the simulator equivalent of SESC's per-section cycle counters).

Traces are ordinary Python iterables, so generators keep memory bounded for
large workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.util.validation import check_positive_int

__all__ = [
    "Op",
    "Compute",
    "Load",
    "Store",
    "Barrier",
    "Lock",
    "Unlock",
    "PhaseBegin",
    "PhaseEnd",
    "ThreadTrace",
    "TraceProgram",
]


@dataclass(frozen=True)
class Compute:
    """A burst of ``instructions`` non-memory instructions."""

    instructions: int

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError(f"instructions must be >= 0, got {self.instructions}")


@dataclass(frozen=True)
class Load:
    """A read of the cache line containing byte address ``addr``."""

    addr: int

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"addr must be >= 0, got {self.addr}")


@dataclass(frozen=True)
class Store:
    """A write to the cache line containing byte address ``addr``."""

    addr: int

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"addr must be >= 0, got {self.addr}")


@dataclass(frozen=True)
class Barrier:
    """A named all-thread barrier; every thread must reach it."""

    barrier_id: int


@dataclass(frozen=True)
class Lock:
    """Acquire the named lock (blocks while another thread holds it)."""

    lock_id: int


@dataclass(frozen=True)
class Unlock:
    """Release the named lock; must be held by this thread."""

    lock_id: int


@dataclass(frozen=True)
class PhaseBegin:
    """Start attributing this thread's cycles to ``phase``."""

    phase: str


@dataclass(frozen=True)
class PhaseEnd:
    """Stop attributing this thread's cycles to ``phase``."""

    phase: str


Op = Compute | Load | Store | Barrier | Lock | Unlock | PhaseBegin | PhaseEnd


@dataclass
class ThreadTrace:
    """One thread's operation sequence.

    ``ops`` may be any iterable (list or generator); it is consumed once.
    """

    thread_id: int
    ops: Iterable[Op]

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)


@dataclass
class TraceProgram:
    """A multithreaded program: one trace per thread, plus metadata.

    ``name`` labels the workload in reports; ``n_threads`` is implied by the
    trace list and validated against thread ids.
    """

    name: str
    threads: Sequence[ThreadTrace]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.threads:
            raise ValueError("a TraceProgram needs at least one thread")
        ids = [t.thread_id for t in self.threads]
        if ids != list(range(len(ids))):
            raise ValueError(
                f"thread ids must be 0..{len(ids) - 1} in order, got {ids}"
            )

    @property
    def n_threads(self) -> int:
        return len(self.threads)


def materialise(ops: Iterable[Op]) -> list[Op]:
    """Force a (possibly lazy) op stream into a list — handy in tests."""
    return list(ops)
