"""Core-to-L2 interconnect timing models.

Two models, matching the paper's settings:

* **bus** — a shared snooping bus with a fixed transfer latency (the
  classic small-scale CMP; the paper's 16-core simulations);
* **mesh** — a 2D mesh of tiles, each holding one core and one bank of the
  distributed shared L2 (home bank = line address modulo core count); the
  transfer latency is the XY hop count times the per-hop latency (the
  topology Section V.E analyses).
"""

from __future__ import annotations

from repro.noc.topology import Mesh2D
from repro.simx.config import MachineConfig

__all__ = ["Interconnect", "BusInterconnect", "ContendedBus", "MeshInterconnect", "build_interconnect"]


class Interconnect:
    """Latency oracle between a requesting core and a line's L2 home.

    ``now`` is the requesting core's local clock; contended interconnects
    use it to model arbitration queueing, uncontended ones ignore it.
    """

    def request_latency(self, core: int, line_addr: int, now: int = 0) -> int:
        """Cycles to send a request and receive the reply."""
        raise NotImplementedError

    def core_to_core_latency(self, src: int, dst: int) -> int:
        """Cycles for a cache-to-cache transfer between two cores."""
        raise NotImplementedError


class BusInterconnect(Interconnect):
    """A fixed-latency shared bus (infinite bandwidth)."""

    def __init__(self, latency: int):
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.latency = latency

    def request_latency(self, core: int, line_addr: int, now: int = 0) -> int:
        return self.latency

    def core_to_core_latency(self, src: int, dst: int) -> int:
        return self.latency if src != dst else 0


class ContendedBus(BusInterconnect):
    """A shared bus with arbitration: one transaction at a time.

    Every request occupies the bus for ``occupancy`` cycles; a request
    issued while the bus is busy queues until it frees.  With many cores
    issuing misses concurrently this is the classic snooping-bus
    saturation that caps small-core designs.
    """

    def __init__(self, latency: int, occupancy: int):
        super().__init__(latency)
        if occupancy < 1:
            raise ValueError(f"occupancy must be >= 1, got {occupancy}")
        self.occupancy = occupancy
        self.busy_until = 0
        self.queued_cycles = 0
        self.transactions = 0

    def request_latency(self, core: int, line_addr: int, now: int = 0) -> int:
        wait = max(0, self.busy_until - now)
        self.busy_until = max(now, self.busy_until) + self.occupancy
        self.queued_cycles += wait
        self.transactions += 1
        return wait + self.latency


class MeshInterconnect(Interconnect):
    """A 2D mesh of tiles with a banked shared L2.

    The home bank of a line is ``line_addr % n_cores``; request latency is
    ``2 × hops × hop_latency`` (request + reply).
    """

    def __init__(self, n_cores: int, hop_latency: int):
        if hop_latency < 0:
            raise ValueError(f"hop_latency must be >= 0, got {hop_latency}")
        self.mesh = Mesh2D(n_cores)
        self.hop_latency = hop_latency

    def home_bank(self, line_addr: int) -> int:
        """The tile holding this line's L2 bank."""
        return line_addr % self.mesh.n_nodes

    def request_latency(self, core: int, line_addr: int, now: int = 0) -> int:
        hops = self.mesh.hop_distance(core, self.home_bank(line_addr))
        return 2 * hops * self.hop_latency

    def core_to_core_latency(self, src: int, dst: int) -> int:
        return self.mesh.hop_distance(src, dst) * self.hop_latency


def build_interconnect(config: MachineConfig) -> Interconnect:
    """Instantiate the interconnect the config names."""
    if config.interconnect == "bus":
        if config.bus_occupancy > 0:
            return ContendedBus(config.bus_latency, config.bus_occupancy)
        return BusInterconnect(config.bus_latency)
    return MeshInterconnect(config.n_cores, config.mesh_hop_latency)
