"""Directory-based MESI coherence across private L1s and a shared L2.

The :class:`CoherenceController` owns all the caches and the directory; the
core timing model calls :meth:`read` / :meth:`write` with a core id and a
line address and receives the access latency, with every protocol action
(upgrades, invalidations, cache-to-cache transfers, writebacks) both applied
to cache state and charged to the latency.

Protocol summary (standard MESI, directory at the L2):

==========  =======================  =========================================
requestor   remote state             action
==========  =======================  =========================================
read        nobody has it            fetch from memory (or L2), install E
read        remote M                 remote writeback + transfer, both S
read        remote E/S               fetch from L2, install S, remote → S
write       nobody has it            fetch exclusive, install M
write       remote M                 transfer + invalidate owner, install M
write       remote E/S               invalidate all sharers, install M
write hit   local S                  upgrade: invalidate other sharers → M
write hit   local E                  silent upgrade → M
==========  =======================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simx.cache import Cache, MesiState
from repro.simx.config import MachineConfig
from repro.simx.dram import DramModel
from repro.simx.interconnect import Interconnect, build_interconnect

__all__ = ["CoherenceController", "CoherenceStats", "DirectoryEntry"]


@dataclass
class DirectoryEntry:
    """Directory knowledge about one line: which L1s hold it and how."""

    sharers: set[int] = field(default_factory=set)
    owner: "int | None" = None  # core holding M/E, None when shared/uncached
    in_l2: bool = False

    def is_cached(self) -> bool:
        return bool(self.sharers) or self.owner is not None


@dataclass
class CoherenceStats:
    """Protocol event counters (per machine run)."""

    reads: int = 0
    writes: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    memory_fetches: int = 0
    cache_to_cache: int = 0
    invalidations: int = 0
    upgrades: int = 0
    writebacks: int = 0


class CoherenceController:
    """All caches plus the MESI directory for one simulated machine."""

    def __init__(self, config: MachineConfig, interconnect: "Interconnect | None" = None):
        self.config = config
        self.l1s = [Cache(config.l1d) for _ in range(config.n_cores)]
        self.l2 = Cache(config.l2)
        self.directory: dict[int, DirectoryEntry] = {}
        self.interconnect = interconnect or build_interconnect(config)
        self.stats = CoherenceStats()
        self.dram: "DramModel | None" = None
        if config.dram == "banked":
            self.dram = DramModel(
                n_banks=config.dram_banks,
                row_bytes=config.dram_row_bytes,
                line_size=config.line_size,
                row_hit_latency=config.dram_row_hit_latency,
                row_miss_latency=config.dram_row_miss_latency,
            )

    def _memory_latency(self, line: int) -> int:
        """Latency of one main-memory line fetch (flat or banked)."""
        if self.dram is None:
            return self.config.memory_latency
        return self.dram.access(line)

    def _prefetch_next(self, core: int, line: int) -> None:
        """Next-line prefetch into the core's L1 (overlapped, free)."""
        nxt = line + 1
        e = self._entry(nxt)
        if e.owner is not None or self.l1s[core].contains(nxt):
            return  # never steal or duplicate owned lines
        had_sharers = bool(e.sharers)
        if not e.in_l2 and not had_sharers:
            self.l2.insert(nxt, MesiState.EXCLUSIVE)
            e.in_l2 = True
        if had_sharers or self.config.coherence_protocol == "msi":
            state = MesiState.SHARED
        else:
            state = MesiState.EXCLUSIVE
        self._install_l1(core, nxt, state)

    # ── helpers ───────────────────────────────────────────────────────────
    def line_of(self, addr: int) -> int:
        """Byte address → line address."""
        return addr // self.config.line_size

    def _entry(self, line: int) -> DirectoryEntry:
        e = self.directory.get(line)
        if e is None:
            e = DirectoryEntry()
            self.directory[line] = e
        return e

    def _handle_l1_eviction(self, core: int, line: int, state: MesiState) -> int:
        """Directory bookkeeping and latency for an evicted L1 line."""
        e = self._entry(line)
        latency = 0
        if state is MesiState.MODIFIED:
            # dirty writeback into L2; writebacks drain from the store
            # buffer in the background, so they use uncontended timing
            self.stats.writebacks += 1
            self.l2.insert(line, MesiState.MODIFIED)
            e.in_l2 = True
            latency += self.interconnect.request_latency(core, line)
        if e.owner == core:
            e.owner = None
        e.sharers.discard(core)
        return latency

    def _install_l1(self, core: int, line: int, state: MesiState) -> int:
        """Insert into the core's L1, handling any eviction; returns extra
        latency caused by a dirty eviction."""
        result = self.l1s[core].insert(line, state)
        latency = 0
        if result.evicted is not None:
            latency += self._handle_l1_eviction(
                core, result.evicted.line_addr, result.evicted.state
            )
        e = self._entry(line)
        if state in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
            e.owner = core
            e.sharers = {core}
        else:
            e.owner = None
            e.sharers.add(core)
        return latency

    def _invalidate_remotes(self, line: int, keep: int) -> int:
        """Invalidate every remote copy of a line; returns total latency."""
        e = self._entry(line)
        latency = 0
        victims = (e.sharers | ({e.owner} if e.owner is not None else set())) - {keep}
        for core in sorted(victims):
            l1 = self.l1s[core]
            had_line = l1.lookup(line)
            if had_line is not None and had_line.state is MesiState.MODIFIED:
                # dirty data flows to the requester / L2 first
                self.stats.writebacks += 1
                self.l2.insert(line, MesiState.MODIFIED)
                e.in_l2 = True
            if l1.invalidate(line):
                self.stats.invalidations += 1
                latency += self.config.invalidation_latency
        e.sharers &= {keep}
        if e.owner is not None and e.owner != keep:
            e.owner = None
        return latency

    # ── protocol entry points ────────────────────────────────────────────
    def read(self, core: int, addr: int, now: int = 0) -> int:
        """Perform a load; returns its latency in cycles."""
        self.stats.reads += 1
        line = self.line_of(addr)
        l1 = self.l1s[core]
        cfg = self.config

        if l1.touch(line) is not None:
            self.stats.l1_hits += 1
            return cfg.l1d.hit_latency

        self.stats.l1_misses += 1
        latency = cfg.l1d.hit_latency + self.interconnect.request_latency(core, line, now)
        e = self._entry(line)

        if e.owner is not None and e.owner != core:
            owner_line = self.l1s[e.owner].lookup(line)
            if owner_line is not None and owner_line.state is MesiState.MODIFIED:
                # cache-to-cache transfer; owner writes back and both share
                self.stats.cache_to_cache += 1
                self.stats.writebacks += 1
                latency += cfg.remote_l1_latency
                latency += self.interconnect.core_to_core_latency(core, e.owner)
                self.l1s[e.owner].set_state(line, MesiState.SHARED)
                self.l2.insert(line, MesiState.SHARED)
                e.in_l2 = True
                e.sharers = {e.owner}
                e.owner = None
                latency += self._install_l1(core, line, MesiState.SHARED)
                return latency
            # remote E: downgrade silently, serve from L2/remote
            if owner_line is not None:
                self.l1s[e.owner].set_state(line, MesiState.SHARED)
            e.sharers = ({e.owner} if e.owner is not None else set()) | set(e.sharers)
            e.owner = None

        if self.l2.touch(line) is not None or e.in_l2:
            self.stats.l2_hits += 1
            latency += cfg.l2.hit_latency
        else:
            self.stats.memory_fetches += 1
            latency += cfg.l2.hit_latency + self._memory_latency(line)
            self.l2.insert(line, MesiState.EXCLUSIVE)
            e.in_l2 = True

        if e.sharers or cfg.coherence_protocol == "msi":
            new_state = MesiState.SHARED  # MSI has no Exclusive state
        else:
            new_state = MesiState.EXCLUSIVE
        latency += self._install_l1(core, line, new_state)
        if cfg.prefetch_next_line:
            self._prefetch_next(core, line)
        return latency

    def write(self, core: int, addr: int, now: int = 0) -> int:
        """Perform a store; returns its latency in cycles."""
        self.stats.writes += 1
        line = self.line_of(addr)
        l1 = self.l1s[core]
        cfg = self.config
        resident = l1.touch(line)

        if resident is not None:
            self.stats.l1_hits += 1
            if resident.state is MesiState.MODIFIED:
                return cfg.l1d.hit_latency
            if resident.state is MesiState.EXCLUSIVE:
                l1.set_state(line, MesiState.MODIFIED)
                e = self._entry(line)
                e.owner = core
                e.sharers = {core}
                return cfg.l1d.hit_latency
            # SHARED → upgrade: invalidate the other sharers
            self.stats.upgrades += 1
            latency = cfg.l1d.hit_latency + self.interconnect.request_latency(core, line, now)
            latency += self._invalidate_remotes(line, keep=core)
            l1.set_state(line, MesiState.MODIFIED)
            e = self._entry(line)
            e.owner = core
            e.sharers = {core}
            return latency

        # write miss: read-for-ownership
        self.stats.l1_misses += 1
        latency = cfg.l1d.hit_latency + self.interconnect.request_latency(core, line, now)
        e = self._entry(line)
        had_remote_m = e.owner is not None and e.owner != core and (
            (rl := self.l1s[e.owner].lookup(line)) is not None
            and rl.state is MesiState.MODIFIED
        )
        if had_remote_m:
            self.stats.cache_to_cache += 1
            latency += cfg.remote_l1_latency
            latency += self.interconnect.core_to_core_latency(core, e.owner)
        elif self.l2.touch(line) is not None or e.in_l2:
            self.stats.l2_hits += 1
            latency += cfg.l2.hit_latency
        else:
            self.stats.memory_fetches += 1
            latency += cfg.l2.hit_latency + self._memory_latency(line)
            self.l2.insert(line, MesiState.EXCLUSIVE)
            e.in_l2 = True
        latency += self._invalidate_remotes(line, keep=core)
        latency += self._install_l1(core, line, MesiState.MODIFIED)
        return latency

    # ── fast path (repro.simx.fastpath) ──────────────────────────────────
    #
    # ``read_private`` / ``write_private`` are cycle- and counter-exact
    # specialisations of :meth:`read` / :meth:`write` for lines the trace
    # analysis proved *thread-private* (accessed by exactly one thread in
    # the whole program, with prefetching disabled).  For such a line the
    # directory can never name a remote owner or sharer, so the remote-M
    # transfer, silent-downgrade and invalidation branches are dead code
    # and the dispatch collapses to: L1 hit, or L1 miss filled from L2 or
    # memory.  The one cross-thread hazard left is the *eviction* a fill
    # may cause.  If the target set is full *and* holds any shared line,
    # both the victim choice and whether an eviction happens at all depend
    # on concurrent remote invalidations (a remote write may free the way
    # first in the reference interleaving), so both methods return ``None``
    # (before mutating any state) whenever :meth:`Cache.fill_hazard` flags
    # the fill; the caller then falls back to the reference path.
    #
    # Equivalence with the reference methods is enforced by
    # tests/simx/test_fastpath_differential.py.

    def read_private(self, core: int, addr: int, unsafe_lines) -> "int | None":
        """Fast :meth:`read` for a thread-private line; None = must bail."""
        cfg = self.config
        line = addr // cfg.line_size
        l1 = self.l1s[core]
        s = l1._sets[line % l1.n_sets]
        entry = s.get(line)
        if entry is not None and entry.state is not MesiState.INVALID:
            s.move_to_end(line)
            l1.hits += 1
            st = self.stats
            st.reads += 1
            st.l1_hits += 1
            return cfg.l1d.hit_latency
        if l1.fill_hazard(line, unsafe_lines):
            return None
        st = self.stats
        st.reads += 1
        l1.misses += 1
        st.l1_misses += 1
        latency = cfg.l1d.hit_latency + self.interconnect.request_latency(core, line)
        e = self._entry(line)
        if self.l2.touch(line) is not None or e.in_l2:
            st.l2_hits += 1
            latency += cfg.l2.hit_latency
        else:
            st.memory_fetches += 1
            latency += cfg.l2.hit_latency + cfg.memory_latency
            self.l2.insert(line, MesiState.EXCLUSIVE)
            e.in_l2 = True
        if e.sharers or cfg.coherence_protocol == "msi":
            new_state = MesiState.SHARED
        else:
            new_state = MesiState.EXCLUSIVE
        latency += self._install_l1(core, line, new_state)
        return latency

    def write_private(self, core: int, addr: int, unsafe_lines) -> "int | None":
        """Fast :meth:`write` for a thread-private line; None = must bail."""
        cfg = self.config
        line = addr // cfg.line_size
        l1 = self.l1s[core]
        s = l1._sets[line % l1.n_sets]
        entry = s.get(line)
        if entry is not None and entry.state is not MesiState.INVALID:
            s.move_to_end(line)
            l1.hits += 1
            st = self.stats
            st.writes += 1
            st.l1_hits += 1
            state = entry.state
            if state is MesiState.MODIFIED:
                return cfg.l1d.hit_latency
            if state is MesiState.EXCLUSIVE:
                entry.state = MesiState.MODIFIED
                e = self._entry(line)
                e.owner = core
                e.sharers = {core}
                return cfg.l1d.hit_latency
            # SHARED (only reachable under MSI for a private line): the
            # upgrade transaction still goes out, but has no one to kill
            st.upgrades += 1
            latency = cfg.l1d.hit_latency + self.interconnect.request_latency(core, line)
            latency += self._invalidate_remotes(line, keep=core)
            entry.state = MesiState.MODIFIED
            e = self._entry(line)
            e.owner = core
            e.sharers = {core}
            return latency
        if l1.fill_hazard(line, unsafe_lines):
            return None
        st = self.stats
        st.writes += 1
        l1.misses += 1
        st.l1_misses += 1
        latency = cfg.l1d.hit_latency + self.interconnect.request_latency(core, line)
        e = self._entry(line)
        if self.l2.touch(line) is not None or e.in_l2:
            st.l2_hits += 1
            latency += cfg.l2.hit_latency
        else:
            st.memory_fetches += 1
            latency += cfg.l2.hit_latency + cfg.memory_latency
            self.l2.insert(line, MesiState.EXCLUSIVE)
            e.in_l2 = True
        latency += self._invalidate_remotes(line, keep=core)
        latency += self._install_l1(core, line, MesiState.MODIFIED)
        return latency

    # ── invariants (exercised by property tests) ─────────────────────────
    def check_invariants(self) -> None:
        """Assert protocol safety: single writer, no stale owners.

        * at most one L1 holds a line in M or E;
        * if any L1 holds M/E, no other L1 holds it in any valid state;
        * directory owner/sharers match actual cache contents.
        """
        seen_lines: set[int] = set()
        for l1 in self.l1s:
            for s in l1._sets:
                seen_lines.update(
                    la for la, ln in s.items() if ln.state is not MesiState.INVALID
                )
        for line in seen_lines:
            holders = {
                core: l1.lookup(line).state  # type: ignore[union-attr]
                for core, l1 in enumerate(self.l1s)
                if l1.lookup(line) is not None
            }
            exclusive = [
                c for c, st in holders.items()
                if st in (MesiState.MODIFIED, MesiState.EXCLUSIVE)
            ]
            assert len(exclusive) <= 1, f"line {line:#x}: multiple owners {exclusive}"
            if exclusive:
                assert len(holders) == 1, (
                    f"line {line:#x}: owner {exclusive[0]} coexists with sharers "
                    f"{set(holders) - set(exclusive)}"
                )
                e = self.directory.get(line)
                assert e is not None and e.owner == exclusive[0], (
                    f"line {line:#x}: directory owner {e.owner if e else None} "
                    f"!= actual {exclusive[0]}"
                )
            else:
                e = self.directory.get(line)
                assert e is not None and set(holders) <= e.sharers, (
                    f"line {line:#x}: sharers {set(holders)} not tracked by "
                    f"directory {e.sharers if e else None}"
                )
