"""The simulated CMP: a discrete-event engine over thread traces.

The machine advances one thread one operation at a time — a conservative
discrete-event simulation that yields a single global order consistent with
every thread's program order, so MESI state transitions happen in a
well-defined sequence.  *Which* thread advances next, and on which core,
is delegated to a pluggable scheduler (:mod:`repro.simx.sched`, selected
by ``MachineConfig.scheduler``): the default ``pinned`` policy is the
paper's one-thread-per-core model (always advance the runnable thread with
the smallest local clock), while ``round-robin`` and ``acmp`` time-multiplex
run queues over the cores with quantum preemption and migration, allowing
oversubscription (``n_threads > n_cores``).

Synchronisation semantics:

* **barriers** block each arriving thread; when the last thread arrives the
  whole group resumes at ``max(arrival clocks) + barrier_release_latency``,
  with each thread's idle gap attributed to its current phase as wait time;
* **locks** are FIFO: a releasing thread hands the lock to the earliest
  waiter, which pays the acquire latency after its wait.

Deadlocks (a barrier some thread never reaches, a lock never released) are
detected and raised rather than hanging the simulation.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass, field, replace

from repro import obs
from repro.simx.coherence import CoherenceController, CoherenceStats
from repro.simx.config import MachineConfig
from repro.simx.core_model import CoreModel
from repro.simx.fastpath import Burst, compile_program, supports_fast_path
from repro.simx.sched import ThreadContext, ThreadState, build_scheduler
from repro.simx.stats import PhaseStats, SchedStats
from repro.simx.trace import (
    Barrier,
    Compute,
    Load,
    Lock,
    PhaseBegin,
    PhaseEnd,
    Store,
    TraceProgram,
    Unlock,
)

__all__ = ["Machine", "SimulationResult", "DeadlockError", "TraceError"]

# ── observability (recorded once per run; see docs/observability.md) ──────
_RUNS = obs.counter("simx_runs_total", "simulator runs", labels=("engine",))
_OPS = obs.counter("simx_ops_total", "trace operations executed")
_FUSED_OPS = obs.counter("simx_fused_ops_total",
                         "operations executed inside fused bursts")
_BURSTS = obs.counter("simx_bursts_total", "fused bursts executed")
_FALLBACKS = obs.counter("simx_burst_fallbacks_total",
                         "bursts that bailed to the reference path")
_CYCLES = obs.counter("simx_cycles_total", "simulated cycles")
_INSTRUCTIONS = obs.counter("simx_instructions_total",
                            "simulated instructions retired")
_PHASE_BUSY = obs.counter("simx_phase_busy_cycles_total",
                          "busy cycles attributed per phase", labels=("phase",))
_PHASE_WAIT = obs.counter("simx_phase_wait_cycles_total",
                          "wait cycles attributed per phase", labels=("phase",))
_RUN_SECONDS = obs.histogram("simx_run_seconds",
                             "wall-clock seconds per simulator run")
_PREEMPTIONS = obs.counter("simx_preemptions_total",
                           "involuntary thread context switches")
_MIGRATIONS = obs.counter("simx_migrations_total",
                          "thread dispatches onto a different core")
_SCHED_WAIT = obs.counter("simx_sched_wait_cycles_total",
                          "cycles runnable threads queued for a core")


class DeadlockError(RuntimeError):
    """No thread can make progress (mismatched barriers or stuck locks)."""


class TraceError(ValueError):
    """A malformed trace: unbalanced phases, unlocking an unheld lock, ..."""


# thread execution state lives with the scheduler layer now; the old
# private names remain as aliases for existing imports
_State = ThreadState
_ThreadCtx = ThreadContext


@dataclass
class SimulationResult:
    """Everything a run produced: timing, phase split, protocol counters."""

    program_name: str
    n_threads: int
    n_cores: int
    total_cycles: int
    thread_cycles: tuple[int, ...]
    phase_stats: PhaseStats
    coherence: CoherenceStats
    instructions: tuple[int, ...]
    coherence_by_phase: "dict[str, CoherenceStats]" = field(default_factory=dict)
    #: dispatch accounting (preemptions, migrations, queue wait); all
    #: zeros under the pinned scheduler
    sched: SchedStats = field(default_factory=SchedStats)
    # execution-engine accounting (observability; not part of the timing
    # semantics, so cache keys and golden outputs never depend on them)
    engine: str = "reference"
    n_ops: int = 0
    n_bursts: int = 0
    n_fused_ops: int = 0
    n_burst_fallbacks: int = 0

    def phase_cycles(self, phase: str, thread_id: "int | None" = None) -> int:
        """Busy cycles attributed to a phase (see :class:`PhaseStats`)."""
        return self.phase_stats.busy_cycles(phase, thread_id)

    def phase_wall_cycles(self, phase: str) -> int:
        """Wall-clock extent of a phase."""
        return self.phase_stats.span_cycles(phase)

    def phase_coherence(self, phase: str) -> CoherenceStats:
        """Protocol events attributed to one phase (zeros if none)."""
        return self.coherence_by_phase.get(phase, CoherenceStats())

    def summary(self) -> str:
        """Human-readable run summary: timing, phases, protocol events."""
        from repro.util.tables import TextTable

        parts = [
            f"program {self.program_name}: {self.n_threads} threads on "
            f"{self.n_cores} cores, {self.total_cycles:,} cycles"
        ]
        phases = self.phase_stats.phases()
        if phases:
            t = TextTable(
                title="phases",
                columns=["phase", "busy cycles", "wait cycles", "wall span"],
            )
            for ph in phases:
                t.add_row([
                    ph,
                    self.phase_stats.busy_cycles(ph),
                    self.phase_stats.wait_cycles(ph),
                    self.phase_stats.span_cycles(ph),
                ])
            parts.append(t.render())
        c = self.coherence
        t2 = TextTable(title="coherence", columns=["event", "count"])
        for name in ("reads", "writes", "l1_hits", "l1_misses", "l2_hits",
                     "memory_fetches", "cache_to_cache", "invalidations",
                     "upgrades", "writebacks"):
            t2.add_row([name, getattr(c, name)])
        parts.append(t2.render())
        if self.sched.scheduler != "pinned":
            t3 = TextTable(
                title=f"scheduler ({self.sched.scheduler})",
                columns=["event", "count"],
            )
            for name in ("dispatches", "preemptions", "migrations",
                         "involuntary_wait_cycles"):
                t3.add_row([name, getattr(self.sched, name)])
            parts.append(t3.render())
        return "\n\n".join(parts)


class Machine:
    """A configured CMP ready to run trace programs.

    Each :meth:`run` uses a fresh cache/coherence state (cold caches), like
    a fresh simulator process per benchmark run.
    """

    def __init__(self, config: MachineConfig):
        self.config = config

    def run(
        self, program: TraceProgram, max_cycles: "int | None" = None
    ) -> SimulationResult:
        """Execute a program and return its timing breakdown.

        Parameters
        ----------
        program:
            The trace program to execute.
        max_cycles:
            Optional watchdog: abort with :class:`RuntimeError` once any
            thread's clock passes this bound (protects batch sweeps from
            accidentally huge traces).

        Raises
        ------
        ValueError
            If the program has more threads than the machine has cores
            under the pinned scheduler (the paper's one-thread-per-core
            model); configure ``MachineConfig(scheduler="round-robin")``
            or ``"acmp"`` to time-multiplex.
        DeadlockError
            If the threads stop making progress.
        TraceError
            If a trace is malformed.
        RuntimeError
            If ``max_cycles`` is exceeded.
        """
        if not obs.REGISTRY.enabled:
            return self._run(program, max_cycles)
        t0 = time.perf_counter()
        with obs.span("simx.run", program=program.name,
                      threads=program.n_threads, cores=self.config.n_cores):
            result = self._run(program, max_cycles)
        _RUN_SECONDS.observe(time.perf_counter() - t0)
        _RUNS.inc(engine=result.engine)
        _OPS.inc(result.n_ops)
        _FUSED_OPS.inc(result.n_fused_ops)
        _BURSTS.inc(result.n_bursts)
        _FALLBACKS.inc(result.n_burst_fallbacks)
        _CYCLES.inc(result.total_cycles)
        _INSTRUCTIONS.inc(sum(result.instructions))
        if result.sched.preemptions:
            _PREEMPTIONS.inc(result.sched.preemptions)
        if result.sched.migrations:
            _MIGRATIONS.inc(result.sched.migrations)
        if result.sched.involuntary_wait_cycles:
            _SCHED_WAIT.inc(result.sched.involuntary_wait_cycles)
        for ph in result.phase_stats.phases():
            _PHASE_BUSY.inc(result.phase_stats.busy_cycles(ph), phase=ph)
            _PHASE_WAIT.inc(result.phase_stats.wait_cycles(ph), phase=ph)
        return result

    def _run(
        self, program: TraceProgram, max_cycles: "int | None" = None
    ) -> SimulationResult:
        """The actual discrete-event loop behind :meth:`run`."""
        scheduled = self.config.scheduler != "pinned"
        if program.n_threads > self.config.n_cores and not scheduled:
            raise ValueError(
                f"program has {program.n_threads} threads but machine has "
                f"{self.config.n_cores} cores; the pinned scheduler does "
                f"not time-multiplex — configure "
                f"MachineConfig(scheduler='round-robin') or "
                f"scheduler='acmp' to oversubscribe"
            )

        # engine priority: batch -> fast -> reference (each gate falls
        # through to the next when the configuration rules it out; any
        # non-pinned scheduler forces the reference engine)
        from repro.simx.batch import run_batch, supports_batch_path

        if supports_batch_path(self.config, max_cycles):
            return run_batch(self.config, program)

        coherence = CoherenceController(self.config)
        # pinned: thread i owns core i, so only n_threads cores are live.
        # time-multiplexed: threads move, so all n_cores are live and a
        # thread's L1/perf identity follows the physical core under it.
        cores = [
            CoreModel(
                i, self.config.core, coherence,
                perf_factor=self.config.perf_factor(i),
            )
            for i in range(
                self.config.n_cores if scheduled else program.n_threads
            )
        ]
        if supports_fast_path(self.config, max_cycles):
            compiled = compile_program(program, self.config.line_size)
            shared_lines = compiled.shared_lines
            threads = [
                _ThreadCtx(tid=t.thread_id, ops=iter(compiled.thread_ops[i]))
                for i, t in enumerate(program.threads)
            ]
        else:
            compiled = None
            shared_lines = frozenset()
            threads = [
                _ThreadCtx(tid=t.thread_id, ops=iter(t)) for t in program.threads
            ]
        ops_executed = 0
        burst_fallbacks = 0
        stats = PhaseStats()
        scheduler = build_scheduler(self.config)

        def charge_wait(ctx: ThreadContext, cycles: int) -> None:
            """Attribute run-queue delay to the thread's current phase."""
            stats.add_wait(ctx.current_phase(), ctx.tid, cycles)

        scheduler.attach(threads, charge_wait)
        barrier_arrivals: dict[int, dict[int, int]] = {}
        lock_holder: dict[int, int] = {}
        lock_waiters: dict[int, list[int]] = {}
        phase_coherence: dict[str, CoherenceStats] = {}

        def charge_coherence(phase: str, before: CoherenceStats) -> None:
            """Attribute the protocol events of one memory op to a phase."""
            bucket = phase_coherence.setdefault(phase, CoherenceStats())
            after = coherence.stats
            for field_name in (
                "reads", "writes", "l1_hits", "l1_misses", "l2_hits",
                "memory_fetches", "cache_to_cache", "invalidations",
                "upgrades", "writebacks",
            ):
                delta = getattr(after, field_name) - getattr(before, field_name)
                if delta:
                    setattr(bucket, field_name, getattr(bucket, field_name) + delta)

        def release_barrier(bid: int) -> None:
            arrivals = barrier_arrivals.pop(bid)
            release = max(arrivals.values()) + self.config.barrier_release_latency
            for tid, arrived_at in arrivals.items():
                ctx = threads[tid]
                stats.add_wait(ctx.current_phase(), tid, release - arrived_at)
                ctx.clock = release
                ctx.state = _State.RUNNABLE
                ctx.barrier_id = None
                scheduler.on_unblock(ctx)

        def run_burst(ctx: _ThreadCtx, burst: Burst) -> None:
            """Execute a fused run of private ops in one scheduler step.

            Cycle- and stats-identical to stepping the ops individually:
            busy cycles and the coherence-by-phase charge are accumulated
            per burst (the per-op sums are equal), and the streamlined
            coherence entry points reproduce the reference protocol
            exactly for private lines.  If an access would evict a shared
            line, the burst stops *before* it and the unexecuted tail is
            pushed back for op-at-a-time execution under the normal
            interleaving.
            """
            nonlocal ops_executed, burst_fallbacks
            core = cores[ctx.tid]
            tid = ctx.tid
            phase = ctx.current_phase()
            if burst.n_mem:
                snapshot = replace(coherence.stats)
            read_private = coherence.read_private
            write_private = coherence.write_private
            compute_denom = core.config.effective_ipc * core.perf_factor
            ceil = math.ceil
            busy = 0
            n_loads = 0
            n_stores = 0
            compute_instructions = 0
            ops = burst.ops
            executed = 0
            for op in ops:
                t = type(op)
                if t is Compute:
                    k = op.instructions
                    compute_instructions += k
                    busy += ceil(k / compute_denom)
                elif t is Load:
                    cycles = read_private(tid, op.addr, shared_lines)
                    if cycles is None:
                        break
                    n_loads += 1
                    busy += cycles
                else:  # Store
                    cycles = write_private(tid, op.addr, shared_lines)
                    if cycles is None:
                        break
                    n_stores += 1
                    busy += cycles
                executed += 1
            core.instructions_retired += compute_instructions + n_loads + n_stores
            core.loads += n_loads
            core.stores += n_stores
            if busy:
                stats.add_busy(phase, tid, busy)
                ctx.clock += busy
            if n_loads or n_stores:
                charge_coherence(phase, snapshot)
            ops_executed += executed
            if executed < len(ops):
                # an eviction hazard ended the run early: execute the rest
                # (including the offending op) on the reference path
                ctx.ops = itertools.chain(ops[executed:], ctx.ops)
                burst_fallbacks += 1

        def step(ctx: _ThreadCtx) -> None:
            nonlocal ops_executed
            try:
                op = next(ctx.ops)
            except StopIteration:
                if ctx.held_locks:
                    raise TraceError(
                        f"thread {ctx.tid} finished holding locks {sorted(ctx.held_locks)}"
                    ) from None
                if ctx.phase_stack:
                    raise TraceError(
                        f"thread {ctx.tid} finished inside phases {ctx.phase_stack}"
                    ) from None
                ctx.state = _State.DONE
                scheduler.on_done(ctx)
                return

            if type(op) is Burst:
                run_burst(ctx, op)
                return
            ops_executed += 1
            if isinstance(op, Compute):
                cycles = cores[ctx.core].compute_cycles(op.instructions)
                stats.add_busy(ctx.current_phase(), ctx.tid, cycles)
                ctx.clock += cycles
                if scheduled:
                    ctx.instructions += op.instructions
                    scheduler.on_charge(ctx, cycles)
            elif isinstance(op, Load):
                snapshot = replace(coherence.stats)
                cycles = cores[ctx.core].load_cycles(op.addr, ctx.clock)
                charge_coherence(ctx.current_phase(), snapshot)
                stats.add_busy(ctx.current_phase(), ctx.tid, cycles)
                ctx.clock += cycles
                if scheduled:
                    ctx.instructions += 1
                    scheduler.on_charge(ctx, cycles)
            elif isinstance(op, Store):
                snapshot = replace(coherence.stats)
                cycles = cores[ctx.core].store_cycles(op.addr, ctx.clock)
                charge_coherence(ctx.current_phase(), snapshot)
                stats.add_busy(ctx.current_phase(), ctx.tid, cycles)
                ctx.clock += cycles
                if scheduled:
                    ctx.instructions += 1
                    scheduler.on_charge(ctx, cycles)
            elif isinstance(op, PhaseBegin):
                ctx.phase_stack.append(op.phase)
                stats.note_begin(op.phase, ctx.clock)
                if scheduled:
                    scheduler.on_phase_change(ctx)
            elif isinstance(op, PhaseEnd):
                if not ctx.phase_stack or ctx.phase_stack[-1] != op.phase:
                    raise TraceError(
                        f"thread {ctx.tid}: PhaseEnd({op.phase!r}) does not match "
                        f"open phases {ctx.phase_stack}"
                    )
                ctx.phase_stack.pop()
                stats.note_end(op.phase, ctx.clock)
                if scheduled:
                    scheduler.on_phase_change(ctx)
            elif isinstance(op, Barrier):
                arrivals = barrier_arrivals.setdefault(op.barrier_id, {})
                if ctx.tid in arrivals:
                    raise TraceError(
                        f"thread {ctx.tid} hit barrier {op.barrier_id} twice "
                        "before release"
                    )
                arrivals[ctx.tid] = ctx.clock
                ctx.state = _State.AT_BARRIER
                ctx.barrier_id = op.barrier_id
                scheduler.on_block(ctx)
                if len(arrivals) == program.n_threads:
                    release_barrier(op.barrier_id)
            elif isinstance(op, Lock):
                if op.lock_id not in lock_holder:
                    lock_holder[op.lock_id] = ctx.tid
                    ctx.held_locks.add(op.lock_id)
                    cycles = self.config.lock_acquire_latency
                    stats.add_busy(ctx.current_phase(), ctx.tid, cycles)
                    ctx.clock += cycles
                    if scheduled:
                        scheduler.on_charge(ctx, cycles)
                else:
                    lock_waiters.setdefault(op.lock_id, []).append(ctx.tid)
                    ctx.state = _State.WAIT_LOCK
                    scheduler.on_block(ctx)
            elif isinstance(op, Unlock):
                if lock_holder.get(op.lock_id) != ctx.tid:
                    raise TraceError(
                        f"thread {ctx.tid} unlocked lock {op.lock_id} it does not hold"
                    )
                del lock_holder[op.lock_id]
                ctx.held_locks.discard(op.lock_id)
                waiters = lock_waiters.get(op.lock_id)
                if waiters:
                    next_tid = waiters.pop(0)
                    w = threads[next_tid]
                    wait = max(w.clock, ctx.clock) - w.clock
                    stats.add_wait(w.current_phase(), next_tid, wait)
                    w.clock = max(w.clock, ctx.clock)
                    lock_holder[op.lock_id] = next_tid
                    w.held_locks.add(op.lock_id)
                    cycles = self.config.lock_acquire_latency
                    stats.add_busy(w.current_phase(), next_tid, cycles)
                    w.clock += cycles
                    w.state = _State.RUNNABLE
                    # the handover acquire is charged before the waiter is
                    # re-dispatched, so it never counts against a quantum
                    scheduler.on_unblock(w)
            else:  # pragma: no cover - exhaustive over Op
                raise TraceError(f"unknown op {op!r}")

        # main loop: the scheduler names the next thread to advance (for
        # pinned dispatch this is the pre-refactor rule — the earliest
        # runnable thread — verbatim)
        while True:
            nxt = scheduler.next_thread()
            if nxt is None:
                if all(t.state is _State.DONE for t in threads):
                    break
                stuck = {
                    t.tid: t.state.value for t in threads if t.state is not _State.DONE
                }
                raise DeadlockError(
                    f"no runnable threads; blocked: {stuck} "
                    f"(pending barriers: {list(barrier_arrivals)}, "
                    f"held locks: {lock_holder})"
                )
            if max_cycles is not None and nxt.clock > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={max_cycles:,} "
                    f"(thread {nxt.tid} at {nxt.clock:,})"
                )
            step(nxt)

        return SimulationResult(
            program_name=program.name,
            n_threads=program.n_threads,
            n_cores=self.config.n_cores,
            total_cycles=max(t.clock for t in threads),
            thread_cycles=tuple(t.clock for t in threads),
            phase_stats=stats,
            coherence=coherence.stats,
            instructions=(
                tuple(t.instructions for t in threads)
                if scheduled
                else tuple(c.instructions_retired for c in cores)
            ),
            coherence_by_phase=phase_coherence,
            sched=scheduler.stats,
            engine="fast" if compiled is not None else "reference",
            n_ops=ops_executed,
            n_bursts=compiled.n_bursts if compiled is not None else 0,
            n_fused_ops=compiled.n_fused_ops if compiled is not None else 0,
            n_burst_fallbacks=burst_fallbacks,
        )
