"""simx — a discrete-event chip-multiprocessor simulator.

The paper extracts its application parameters (Table II) with the SESC
simulator.  ``simx`` is the from-scratch substitute: configurable cores with
an issue-width timing model, private L1 caches, a shared L2 with MESI
coherence, a bus or 2D-mesh interconnect, barrier/lock synchronisation, and
per-phase cycle accounting.

Workloads do not run as machine code; they compile to *operation traces*
(compute bursts, cache-line loads/stores, synchronisation, phase markers —
see :mod:`repro.simx.trace`).  This preserves exactly what the paper
measures — how serial/reduction/parallel phase times change with core
count — without simulating a MIPS pipeline.

Typical use::

    from repro.simx import MachineConfig, Machine
    machine = Machine(MachineConfig.baseline(n_cores=8))
    result = machine.run(program)          # program: TraceProgram
    result.phase_cycles("reduction")
"""

from repro.simx.batch import supports_batch_path
from repro.simx.config import CacheConfig, CoreConfig, MachineConfig
from repro.simx.fastpath import supports_fast_path
from repro.simx.machine import Machine, SimulationResult
from repro.simx.sched import (
    AcmpScheduler,
    PinnedScheduler,
    RoundRobinScheduler,
    Scheduler,
    build_scheduler,
    supports_scheduling,
)
from repro.simx.stats import PhaseStats, SchedStats
from repro.simx.trace import (
    Barrier,
    Compute,
    Load,
    Lock,
    PhaseBegin,
    PhaseEnd,
    Store,
    ThreadTrace,
    TraceProgram,
    Unlock,
)

__all__ = [
    "MachineConfig",
    "CoreConfig",
    "CacheConfig",
    "Machine",
    "SimulationResult",
    "PhaseStats",
    "TraceProgram",
    "ThreadTrace",
    "Compute",
    "Load",
    "Store",
    "Barrier",
    "Lock",
    "Unlock",
    "PhaseBegin",
    "PhaseEnd",
    "SchedStats",
    "Scheduler",
    "PinnedScheduler",
    "RoundRobinScheduler",
    "AcmpScheduler",
    "build_scheduler",
    "supports_batch_path",
    "supports_fast_path",
    "supports_scheduling",
]
