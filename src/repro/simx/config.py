"""Machine configuration (Table I of the paper).

The baseline models the paper's simulated platform: 4-wide cores with
private L1 instruction/data caches, a 4 MB 16-way shared L2 with MESI
coherence, and a modest out-of-order window.  ``simx`` is an
operation-level simulator, so pipeline structures (instruction window, LSQ,
ROB, branch predictor) enter the timing model as an effective
instructions-per-cycle ceiling rather than being simulated structurally;
their Table I sizes are kept in the config for documentation and for the
IPC derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.validation import check_positive, check_positive_int

__all__ = ["CacheConfig", "CoreConfig", "MachineConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache.

    Sizes are in bytes; ``line_size`` must divide ``size`` evenly into
    ``ways`` equal banks.
    """

    size: int
    ways: int
    line_size: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        check_positive_int(self.size, "size")
        check_positive_int(self.ways, "ways")
        check_positive_int(self.line_size, "line_size")
        check_positive_int(self.hit_latency, "hit_latency")
        if self.size % (self.ways * self.line_size) != 0:
            raise ValueError(
                f"cache size {self.size} not divisible into {self.ways} ways "
                f"of {self.line_size}-byte lines"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size // (self.ways * self.line_size)

    @property
    def n_lines(self) -> int:
        """Total line capacity."""
        return self.size // self.line_size


@dataclass(frozen=True)
class CoreConfig:
    """Core pipeline parameters (Table I: Fetch/Issue/Commit = 4,
    Instn. Window/LSQ/ROB = 32/16/64, 2-level GAp branch predictor)."""

    issue_width: int = 4
    instruction_window: int = 32
    lsq_entries: int = 16
    rob_entries: int = 64
    btb_entries: int = 512
    branch_history_entries: int = 2048
    #: effective sustained IPC for compute bursts; a 4-wide core with a
    #: 32-entry window sustains roughly half its peak on clustering codes.
    effective_ipc: float = 2.0

    def __post_init__(self) -> None:
        check_positive_int(self.issue_width, "issue_width")
        check_positive_int(self.instruction_window, "instruction_window")
        check_positive_int(self.lsq_entries, "lsq_entries")
        check_positive_int(self.rob_entries, "rob_entries")
        check_positive(self.effective_ipc, "effective_ipc")
        if self.effective_ipc > self.issue_width:
            raise ValueError(
                f"effective_ipc {self.effective_ipc} exceeds issue width {self.issue_width}"
            )


@dataclass(frozen=True)
class MachineConfig:
    """A complete CMP: cores, cache hierarchy, interconnect and memory.

    Latencies are in core cycles.  The coherence protocol is MESI with an
    L2-side directory; ``remote_l1_latency`` is the cost of a
    cache-to-cache transfer, ``invalidation_latency`` the cost of
    invalidating one remote sharer on a write upgrade.
    """

    n_cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(size=16 * 1024, ways=2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(size=64 * 1024, ways=4))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size=4 * 1024 * 1024, ways=16, hit_latency=12)
    )
    memory_latency: int = 120
    remote_l1_latency: int = 40
    invalidation_latency: int = 12
    interconnect: str = "bus"  # "bus" | "mesh"
    bus_latency: int = 4
    #: cycles each bus transaction occupies the bus (0 = infinite
    #: bandwidth); > 0 enables arbitration queueing (ContendedBus).
    bus_occupancy: int = 0
    mesh_hop_latency: int = 2
    lock_acquire_latency: int = 20
    barrier_release_latency: int = 10
    #: per-core sequential-performance multipliers (empty = homogeneous).
    #: Factor k scales a core's compute throughput by k (cache/memory
    #: latencies are unchanged — bigger cores don't speed up the wires).
    core_perf_factors: tuple = ()
    #: "flat" charges memory_latency per L2 miss; "banked" routes misses
    #: through the open-row DRAM model (repro.simx.dram).
    dram: str = "flat"
    dram_banks: int = 8
    dram_row_bytes: int = 2048
    dram_row_hit_latency: int = 60
    dram_row_miss_latency: int = 160
    #: fetch line+1 into the L1 alongside every demand read miss
    #: (overlapped, no extra latency) — a next-line stream prefetcher.
    prefetch_next_line: bool = False
    #: "mesi" (Table I's protocol) or "msi" — without the Exclusive state
    #: every first write after a read miss pays an upgrade transaction.
    coherence_protocol: str = "mesi"
    #: execute runs of thread-private Compute/Load/Store operations as
    #: fused bursts (repro.simx.fastpath).  Cycle- and stats-identical to
    #: the op-at-a-time reference path by construction; the machine falls
    #: back to the reference path automatically whenever a configuration
    #: makes fusion unsafe (contended bus, banked DRAM, prefetching) or a
    #: burst is about to evict a shared line.  Disable to force the
    #: reference path everywhere.
    fast_path: bool = True
    #: execute whole traces as lockstep batch epochs (repro.simx.batch):
    #: each thread's private segments run back-to-back with no scheduler
    #: pass, and only synchronisation/shared ops are globally ordered.
    #: Cycle- and stats-identical to the reference path by construction
    #: (enforced by tests/differential); subject to the same safety gates
    #: as the fast path.  Takes precedence over ``fast_path`` when both
    #: are enabled and supported.
    batch_path: bool = False
    #: thread-dispatch policy (repro.simx.sched).  "pinned" is the paper's
    #: one-thread-per-core model (and the only policy the fused engines
    #: support); "round-robin" time-multiplexes run queues over the cores
    #: with quantum preemption; "acmp" extends round-robin with a big-core
    #: ownership policy for asymmetric machines.
    scheduler: str = "pinned"
    #: cycles a dispatched thread may run before it can be preempted by a
    #: ready queued thread (None = run until it blocks).  Only meaningful
    #: for the time-multiplexing schedulers.
    quantum: "int | None" = None
    #: cycles charged when a thread is dispatched on a different core than
    #: the one it last ran on (cold-start penalty on top of the locality
    #: it naturally loses by leaving its L1 behind).
    migration_cost: int = 0
    #: big-core ownership policy for scheduler="acmp":
    #: "first-come" (core 0 is just another core), "reduction-owns-big"
    #: (threads inside a serial/merge phase get dispatch priority for core
    #: 0 and evict other occupants), "migrate-on-phase" (threads chase the
    #: big core on serial-phase entry and leave it on exit).
    acmp_policy: str = "first-come"

    def __post_init__(self) -> None:
        check_positive_int(self.n_cores, "n_cores")
        check_positive_int(self.memory_latency, "memory_latency")
        check_positive_int(self.remote_l1_latency, "remote_l1_latency")
        check_positive_int(self.invalidation_latency, "invalidation_latency")
        check_positive_int(self.bus_latency, "bus_latency")
        check_positive_int(self.mesh_hop_latency, "mesh_hop_latency")
        check_positive_int(self.lock_acquire_latency, "lock_acquire_latency")
        check_positive_int(self.barrier_release_latency, "barrier_release_latency")
        if self.interconnect not in ("bus", "mesh"):
            raise ValueError(
                f"interconnect must be 'bus' or 'mesh', got {self.interconnect!r}"
            )
        if self.dram not in ("flat", "banked"):
            raise ValueError(f"dram must be 'flat' or 'banked', got {self.dram!r}")
        if self.coherence_protocol not in ("mesi", "msi"):
            raise ValueError(
                f"coherence_protocol must be 'mesi' or 'msi', "
                f"got {self.coherence_protocol!r}"
            )
        if self.l1d.line_size != self.l2.line_size:
            raise ValueError("L1D and L2 must share a line size")
        if self.core_perf_factors:
            if len(self.core_perf_factors) != self.n_cores:
                raise ValueError(
                    f"core_perf_factors has {len(self.core_perf_factors)} entries "
                    f"for {self.n_cores} cores"
                )
            if any(f <= 0 for f in self.core_perf_factors):
                raise ValueError("core_perf_factors must be positive")
        if self.scheduler not in ("pinned", "round-robin", "acmp"):
            raise ValueError(
                f"scheduler must be 'pinned', 'round-robin' or 'acmp', "
                f"got {self.scheduler!r}"
            )
        if self.quantum is not None:
            check_positive_int(self.quantum, "quantum")
        if self.migration_cost < 0 or self.migration_cost != int(self.migration_cost):
            raise ValueError(
                f"migration_cost must be a non-negative integer, "
                f"got {self.migration_cost!r}"
            )
        if self.acmp_policy not in (
            "first-come", "reduction-owns-big", "migrate-on-phase"
        ):
            raise ValueError(
                f"acmp_policy must be 'first-come', 'reduction-owns-big' or "
                f"'migrate-on-phase', got {self.acmp_policy!r}"
            )
        if self.scheduler == "pinned":
            if self.quantum is not None:
                raise ValueError(
                    "quantum is only meaningful for the time-multiplexing "
                    "schedulers; pinned never preempts "
                    "(set scheduler='round-robin' or 'acmp')"
                )
            if self.migration_cost:
                raise ValueError(
                    "migration_cost is only meaningful for the "
                    "time-multiplexing schedulers; pinned never migrates"
                )
        if self.acmp_policy != "first-come" and self.scheduler != "acmp":
            raise ValueError(
                f"acmp_policy={self.acmp_policy!r} requires scheduler='acmp'"
            )

    @staticmethod
    def baseline(n_cores: int = 16, interconnect: str = "bus") -> "MachineConfig":
        """The Table I baseline configuration with ``n_cores`` cores.

        The paper simulates up to 16 cores with this configuration; the
        hardware validation machine has 8.
        """
        return MachineConfig(n_cores=n_cores, interconnect=interconnect)

    @staticmethod
    def asymmetric(
        rl: int,
        n_small: int,
        r: int = 1,
        interconnect: str = "bus",
    ) -> "MachineConfig":
        """An ACMP: core 0 is a large ``rl``-BCE core, cores 1..n_small are
        small ``r``-BCE cores; sequential performance follows the paper's
        sqrt-area law.  Pin the master thread (serial sections and the
        merge) to core 0 — tracegen's thread 0 lands there naturally.
        """
        check_positive_int(rl, "rl")
        check_positive_int(n_small, "n_small")
        check_positive_int(r, "r")
        if rl < r:
            raise ValueError(f"large core rl={rl} must be >= small core r={r}")
        factors = (float(rl) ** 0.5, *([float(r) ** 0.5] * n_small))
        return MachineConfig(
            n_cores=n_small + 1,
            interconnect=interconnect,
            core_perf_factors=factors,
        )

    def perf_factor(self, core_id: int) -> float:
        """Sequential-performance multiplier of a core (1.0 if homogeneous)."""
        if not self.core_perf_factors:
            return 1.0
        return float(self.core_perf_factors[core_id])

    def with_cores(self, n_cores: int) -> "MachineConfig":
        """A copy with a different core count (used for scaling sweeps)."""
        return replace(self, n_cores=n_cores)

    @property
    def line_size(self) -> int:
        """The coherence granularity (L1D/L2 line size)."""
        return self.l1d.line_size
