"""Set-associative cache with LRU replacement.

Caches operate on *line addresses* (byte address >> log2(line_size)).  Each
cache tracks presence and per-line coherence state; the MESI protocol logic
itself lives in :mod:`repro.simx.coherence`, which drives these caches.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum

from repro.simx.config import CacheConfig

__all__ = ["MesiState", "CacheLine", "Cache", "AccessResult"]


class MesiState(Enum):
    """MESI coherence states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CacheLine:
    """A resident cache line: its address tag and coherence state."""

    line_addr: int
    state: MesiState


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a cache lookup/insert."""

    hit: bool
    state: MesiState
    evicted: "CacheLine | None" = None


class Cache:
    """A set-associative, LRU cache indexed by line address.

    The structure is an OrderedDict per set: oldest entry first, so LRU
    eviction pops from the front and touches move lines to the back.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.n_sets = config.n_sets
        self.ways = config.ways
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ── addressing ────────────────────────────────────────────────────────
    def set_index(self, line_addr: int) -> int:
        """Which set a line address maps to."""
        return line_addr % self.n_sets

    # ── queries (no state change) ─────────────────────────────────────────
    def lookup(self, line_addr: int) -> "CacheLine | None":
        """Return the resident line, or None; does not update LRU order."""
        line = self._sets[self.set_index(line_addr)].get(line_addr)
        if line is not None and line.state is MesiState.INVALID:
            return None
        return line

    def contains(self, line_addr: int) -> bool:
        """True when the line is resident in a valid state."""
        return self.lookup(line_addr) is not None

    # ── mutations ─────────────────────────────────────────────────────────
    def touch(self, line_addr: int) -> "CacheLine | None":
        """LRU-touch a resident line and return it (None on miss).

        Counts a hit or a miss.
        """
        s = self._sets[self.set_index(line_addr)]
        line = s.get(line_addr)
        if line is None or line.state is MesiState.INVALID:
            self.misses += 1
            return None
        s.move_to_end(line_addr)
        self.hits += 1
        return line

    def insert(self, line_addr: int, state: MesiState) -> AccessResult:
        """Install a line (after a miss), evicting LRU if the set is full.

        Returns the evicted line (if any) so the coherence layer can write
        back MODIFIED data and update the directory.
        """
        if state is MesiState.INVALID:
            raise ValueError("cannot insert a line in INVALID state")
        s = self._sets[self.set_index(line_addr)]
        existing = s.get(line_addr)
        if existing is not None and existing.state is not MesiState.INVALID:
            # upgrade in place
            existing.state = state
            s.move_to_end(line_addr)
            return AccessResult(hit=True, state=state)
        if existing is not None:
            del s[line_addr]  # replace the stale INVALID entry
        evicted = None
        # evict the oldest valid line if the set is at capacity
        while len(s) >= self.ways:
            _, old = s.popitem(last=False)
            if old.state is not MesiState.INVALID:
                evicted = old
                self.evictions += 1
                break
        line = CacheLine(line_addr=line_addr, state=state)
        s[line_addr] = line
        return AccessResult(hit=False, state=state, evicted=evicted)

    def fill_hazard(self, line_addr: int, watched) -> bool:
        """Would inserting ``line_addr`` evict from a set that also holds
        a *watched* line?

        Pure (no state change) and conservative: the fast path bails out
        of a fused burst whenever this is True, because with a watched
        (shared) line resident in a full set, both the eviction *victim*
        and whether an eviction happens at all depend on concurrent remote
        invalidations — i.e. on the exact interleaving the burst elides.
        A fill into a set with free ways, or into a set holding only
        unwatched (thread-private) lines, is interleaving-independent.
        """
        s = self._sets[self.set_index(line_addr)]
        stale = line_addr if line_addr in s else None
        occupancy = len(s) - (1 if stale is not None else 0)
        if occupancy < self.ways:
            return False  # free way: a fill cannot evict anything
        return any(
            la != stale and line.state is not MesiState.INVALID and la in watched
            for la, line in s.items()
        )

    def set_state(self, line_addr: int, state: MesiState) -> None:
        """Change a resident line's coherence state (directory callbacks)."""
        s = self._sets[self.set_index(line_addr)]
        line = s.get(line_addr)
        if line is None:
            if state is MesiState.INVALID:
                return  # already gone
            raise KeyError(f"line {line_addr:#x} not resident")
        if state is MesiState.INVALID:
            del s[line_addr]
        else:
            line.state = state

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line (remote write); True if it was present and valid."""
        s = self._sets[self.set_index(line_addr)]
        line = s.pop(line_addr, None)
        return line is not None and line.state is not MesiState.INVALID

    # ── introspection ─────────────────────────────────────────────────────
    def valid_lines(self) -> int:
        """Number of resident valid lines."""
        return sum(
            1
            for s in self._sets
            for line in s.values()
            if line.state is not MesiState.INVALID
        )

    @property
    def miss_rate(self) -> float:
        """Misses / accesses since construction (0 when no accesses)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
