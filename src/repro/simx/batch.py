"""Lockstep batch execution: per-thread private segments between sync points.

The fused fast path (:mod:`repro.simx.fastpath`) still pays a scheduler
pass — a runnable scan plus a ``min`` over thread clocks — per burst *and*
per non-burst op.  This module removes the scheduler from private work
entirely: each thread's trace is compiled into a structure-of-arrays
sequence of **segments** (maximal runs of thread-private ``Compute`` /
``Load`` / ``Store``, with op kinds and arguments unpacked into parallel
tuples, pure-compute runs additionally as a numpy array) separated by
**sync points** (shared accesses, barriers, locks, phase-crossing ops
never split a segment — phase markers are segment boundaries handled
inline).  Execution then alternates two regimes:

* **eager epochs** — every runnable thread advances through its segments
  back-to-back with no scheduler involvement, charging busy cycles,
  cache state and coherence counters through the private entry points of
  :class:`~repro.simx.coherence.CoherenceController`, until it parks at
  its next sync point (or bails on an eviction hazard);
* **global order** — among parked threads, sync ops execute one at a
  time in ``(clock, tid)`` order — exactly the reference scheduler's
  earliest-runnable-first order — through the full protocol paths.

Why this is cycle- and stats-identical to the reference interleaving:

* a private line enters core C's L1 only through C's own accesses
  (remote ops invalidate/downgrade, never install; prefetching is gated
  off), so executing C's private ops *early* sees identical L1 state
  unless the target set is full and holds a shared line — precisely the
  case :meth:`~repro.simx.cache.Cache.fill_hazard` flags, upon which the
  offending op is parked and executed at its exact global position;
* ``DirectoryEntry.in_l2`` is sticky, so L2-structural effects of
  reordered fills are unobservable in any reported counter.  Stronger:
  every ``l2.insert`` call site in the protocol also sets ``in_l2``, so
  ``l2.touch(line) is not None`` implies ``e.in_l2`` and the reference
  condition ``l2.touch(line) is not None or e.in_l2`` is equivalent to
  ``e.in_l2`` alone.  The batch private path therefore skips the L2
  arrays entirely and consults/sets only the directory flag — L2 LRU
  order and the L2 ``Cache`` object's hit/miss tallies (which no result
  field reports) are the only state that diverges;
* :class:`~repro.simx.coherence.CoherenceStats` are sums and
  :class:`~repro.simx.stats.PhaseStats` spans are min/max over per-thread
  clocks that themselves evolve identically, so attribution is
  order-independent;
* sync ops execute in the reference global order by construction: when
  every thread is parked, each parked clock equals its reference value
  (private timing is counter-exact), and the reference scheduler would
  pick the minimum-clock thread (ties to the lowest tid) next.

The gates are the fast path's (stateless interconnect, flat DRAM, no
prefetch) plus the ``batch_path`` opt-in knob; equivalence across all
three engines is enforced by ``tests/differential/``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.simx.cache import CacheLine, MesiState
from repro.simx.coherence import CoherenceController, CoherenceStats, DirectoryEntry
from repro.simx.interconnect import BusInterconnect
from repro.simx.config import MachineConfig
from repro.simx.core_model import CoreModel
from repro.simx.stats import PhaseStats
from repro.simx.trace import (
    Barrier,
    Compute,
    Load,
    Lock,
    PhaseBegin,
    PhaseEnd,
    Store,
    TraceProgram,
    Unlock,
)

__all__ = ["supports_batch_path", "compile_batch", "run_batch", "BatchProgram"]

#: vectorise the compute-cycle sum only past this run length — below it the
#: numpy call costs more than the scalar loop.
_VEC_MIN = 8

_COMPUTE, _LOAD, _STORE = 0, 1, 2


def supports_batch_path(config: MachineConfig, max_cycles: "int | None" = None) -> bool:
    """Whether the batch interpreter may run this configuration.

    Requires the ``batch_path`` opt-in plus the same order-independence
    gates as :func:`repro.simx.fastpath.supports_fast_path`: no cycle
    watchdog (the eager epochs overshoot it), a stateless interconnect,
    flat DRAM, no next-line prefetch, and pinned dispatch
    (:func:`repro.simx.sched.supports_scheduling` — lockstep epochs assume
    one thread per core).
    """
    from repro.simx.sched import supports_scheduling

    return (
        config.batch_path
        and max_cycles is None
        and config.dram == "flat"
        and not config.prefetch_next_line
        and not (config.interconnect == "bus" and config.bus_occupancy > 0)
        and supports_scheduling(config)
    )


class _Seg:
    """A maximal run of private ops in structure-of-arrays form.

    ``kinds[j]`` / ``args[j]`` drive the hot loop without isinstance
    dispatch; ``ops`` is kept only to rebuild the tail after a hazard
    bail.  Pure-compute segments carry their instruction counts as a
    numpy array (``carr``) so the whole run prices as one vectorised
    ceil-sum.
    """

    __slots__ = ("kinds", "args", "ops", "n_mem", "carr", "total_instr")

    def __init__(self, kinds: tuple, args: tuple, ops: tuple, n_mem: int):
        self.kinds = kinds
        self.args = args
        self.ops = ops
        self.n_mem = n_mem
        if n_mem == 0 and len(args) >= _VEC_MIN:
            self.carr = np.asarray(args, dtype=np.float64)
            self.total_instr = int(sum(args))
        else:
            self.carr = None
            self.total_instr = 0


@dataclass(frozen=True)
class BatchProgram:
    """A program lowered for batch execution.

    ``thread_entries[tid]`` mixes :class:`_Seg` runs with phase markers
    and sync ops; ``shared_lines`` is the eviction bail-out set.  The
    burst accounting mirrors :class:`~repro.simx.fastpath.CompiledProgram`:
    a multi-op segment counts as one burst.
    """

    thread_entries: tuple
    shared_lines: frozenset
    n_bursts: int
    n_fused_ops: int


def compile_batch(program: TraceProgram, line_size: int) -> BatchProgram:
    """Lower a program into per-thread segment/sync streams."""
    op_lists = [list(t.ops) for t in program.threads]

    # accessor analysis, as in fastpath.compile_program
    owner: dict[int, int] = {}
    _SHARED = -1
    for tid, ops in enumerate(op_lists):
        for op in ops:
            t = type(op)
            if t is Load or t is Store:
                line = op.addr // line_size
                prev = owner.setdefault(line, tid)
                if prev != tid:
                    owner[line] = _SHARED
    shared_lines = frozenset(line for line, o in owner.items() if o == _SHARED)

    n_bursts = 0
    n_fused = 0
    entries: list[tuple] = []
    for ops in op_lists:
        out: list = []
        kinds: list = []
        args: list = []
        run: list = []
        n_mem = 0

        def flush() -> None:
            nonlocal n_mem, n_bursts, n_fused, kinds, args, run
            if run:
                out.append(_Seg(tuple(kinds), tuple(args), tuple(run), n_mem))
                if len(run) >= 2:
                    n_bursts += 1
                    n_fused += len(run)
            kinds, args, run, n_mem = [], [], [], 0

        for op in ops:
            t = type(op)
            if t is Compute:
                kinds.append(_COMPUTE)
                args.append(op.instructions)
                run.append(op)
            elif (t is Load or t is Store) and op.addr // line_size not in shared_lines:
                kinds.append(_LOAD if t is Load else _STORE)
                args.append(op.addr)
                run.append(op)
                n_mem += 1
            else:
                flush()
                out.append(op)
        flush()
        entries.append(tuple(out))

    return BatchProgram(
        thread_entries=tuple(entries),
        shared_lines=shared_lines,
        n_bursts=n_bursts,
        n_fused_ops=n_fused,
    )


# thread states: parked threads hold their next sync op in ``pending``
_RUNNABLE, _PENDING, _AT_BARRIER, _WAIT_LOCK, _DONE = range(5)


@dataclass
class _Thread:
    """Batch-scheduler bookkeeping for one thread."""

    tid: int
    entries: list
    ip: int = 0
    clock: int = 0
    state: int = _RUNNABLE
    pending: object = None
    phase_stack: list = field(default_factory=list)
    held_locks: set = field(default_factory=set)

    def current_phase(self) -> str:
        return self.phase_stack[-1] if self.phase_stack else "(unattributed)"


def run_batch(config: MachineConfig, program: TraceProgram):
    """Execute a program on the batch engine; returns a SimulationResult
    cycle- and stats-identical to the reference interpreter's."""
    from repro.simx.machine import DeadlockError, SimulationResult, TraceError

    coherence = CoherenceController(config)
    cores = [
        CoreModel(i, config.core, coherence, perf_factor=config.perf_factor(i))
        for i in range(program.n_threads)
    ]
    compiled = compile_batch(program, config.line_size)
    shared_lines = compiled.shared_lines
    threads = [
        _Thread(tid=t.thread_id, entries=list(compiled.thread_entries[i]))
        for i, t in enumerate(program.threads)
    ]

    stats = PhaseStats()
    phase_coherence: dict[str, CoherenceStats] = {}
    barrier_arrivals: dict[int, dict[int, int]] = {}
    lock_holder: dict[int, int] = {}
    lock_waiters: dict[int, list[int]] = {}
    ops_executed = 0
    burst_fallbacks = 0

    st = coherence.stats
    np_ceil = np.ceil
    ceil = math.ceil

    # hoisted machine facts for the inlined private-access path
    directory = coherence.directory
    interconnect = coherence.interconnect
    msi = config.coherence_protocol == "msi"
    hit_lat = config.l1d.hit_latency
    l2_lat = config.l2.hit_latency
    mem_lat = config.memory_latency
    line_size = config.line_size
    # uncontended bus: every request costs the same; mesh: deterministic
    # per (core, line), memoised per core (ContendedBus is gated upstream)
    bus_lat = interconnect.latency if type(interconnect) is BusInterconnect else None
    req_memos: list = [{} for _ in range(program.n_threads)]
    mesh_req = interconnect.request_latency
    M_ST, E_ST, S_ST, INV = (
        MesiState.MODIFIED, MesiState.EXCLUSIVE, MesiState.SHARED, MesiState.INVALID,
    )
    # L1 set indices that could ever hold a shared line: fills elsewhere
    # can skip the eviction-hazard scan with one membership test
    shared_set_idx = frozenset(l % config.l1d.n_sets for l in shared_lines)

    def snap() -> tuple:
        return (st.reads, st.writes, st.l1_hits, st.l1_misses, st.l2_hits,
                st.memory_fetches, st.cache_to_cache, st.invalidations,
                st.upgrades, st.writebacks)

    def charge(phase: str, before: tuple) -> None:
        """Attribute protocol-event deltas since ``before`` to a phase."""
        after = snap()
        if after == before:
            return
        b = phase_coherence.setdefault(phase, CoherenceStats())
        b.reads += after[0] - before[0]
        b.writes += after[1] - before[1]
        b.l1_hits += after[2] - before[2]
        b.l1_misses += after[3] - before[3]
        b.l2_hits += after[4] - before[4]
        b.memory_fetches += after[5] - before[5]
        b.cache_to_cache += after[6] - before[6]
        b.invalidations += after[7] - before[7]
        b.upgrades += after[8] - before[8]
        b.writebacks += after[9] - before[9]

    def advance(ctx: _Thread) -> None:
        """Eagerly run a thread's segments until it parks or finishes."""
        nonlocal ops_executed, burst_fallbacks
        entries = ctx.entries
        n_entries = len(entries)
        core = cores[ctx.tid]
        tid = ctx.tid
        denom = core.config.effective_ipc * core.perf_factor
        l1 = coherence.l1s[tid]
        l1_sets = l1._sets
        n_sets = l1.n_sets
        ways = l1.ways
        req_memo = req_memos[tid]
        i = ctx.ip
        while i < n_entries:
            e = entries[i]
            t = type(e)
            if t is _Seg:
                if e.carr is not None:
                    # pure compute, long enough to price as one ceil-sum
                    busy = int(np_ceil(e.carr / denom).sum())
                    core.instructions_retired += e.total_instr
                    stats.add_busy(ctx.current_phase(), tid, busy)
                    ctx.clock += busy
                    ops_executed += len(e.args)
                    i += 1
                    continue
                phase = ctx.current_phase()
                before = snap() if e.n_mem else None
                busy = 0
                n_loads = 0
                n_stores = 0
                instr = 0
                executed = 0
                bailed = False
                # per-segment tallies, flushed to the shared counters once
                d_l1h = d_l1m = d_l2h = d_mem = d_upg = d_wb = d_ev = 0
                for k, a in zip(e.kinds, e.args):
                    if k == _COMPUTE:
                        instr += a
                        busy += ceil(a / denom)
                        executed += 1
                        continue
                    # inlined read_private / write_private: identical
                    # decisions and latencies on the same L1 + directory
                    # state, minus the per-op call/allocation overhead and
                    # the (unobservable, see module docstring) L2 arrays
                    line = a // line_size
                    set_idx = line % n_sets
                    s = l1_sets[set_idx]
                    ent = s.get(line)
                    hit = ent is not None and ent.state is not INV
                    if hit and k == _LOAD:
                        s.move_to_end(line)
                        d_l1h += 1
                        n_loads += 1
                        busy += hit_lat
                        executed += 1
                        continue
                    if hit:  # store hit: M silent, E upgrades, S (MSI) pays
                        s.move_to_end(line)
                        d_l1h += 1
                        n_stores += 1
                        state = ent.state
                        if state is M_ST:
                            busy += hit_lat
                        elif state is E_ST:
                            ent.state = M_ST
                            de = directory[line]
                            de.owner = tid
                            sh = de.sharers
                            sh.clear()
                            sh.add(tid)
                            busy += hit_lat
                        else:
                            # SHARED → upgrade; a private line has no
                            # remote sharers, so nothing to invalidate
                            d_upg += 1
                            if bus_lat is not None:
                                busy += hit_lat + bus_lat
                            else:
                                rl = req_memo.get(line)
                                if rl is None:
                                    rl = req_memo[line] = mesh_req(tid, line)
                                busy += hit_lat + rl
                            ent.state = M_ST
                            de = directory[line]
                            de.owner = tid
                            sh = de.sharers
                            sh.clear()
                            sh.add(tid)
                        executed += 1
                        continue
                    # miss: bail if the fill could evict a shared line
                    if (
                        len(s) - (ent is not None) >= ways
                        and set_idx in shared_set_idx
                        and any(
                            la != line and ln.state is not INV and la in shared_lines
                            for la, ln in s.items()
                        )
                    ):
                        bailed = True
                        break
                    d_l1m += 1
                    de = directory.get(line)
                    if de is None:
                        de = directory[line] = DirectoryEntry()
                    if bus_lat is not None:
                        lat = hit_lat + bus_lat
                    else:
                        rl = req_memo.get(line)
                        if rl is None:
                            rl = req_memo[line] = mesh_req(tid, line)
                        lat = hit_lat + rl
                    if de.in_l2:
                        d_l2h += 1
                        lat += l2_lat
                    else:
                        d_mem += 1
                        lat += l2_lat + mem_lat
                        de.in_l2 = True
                    if k == _LOAD:
                        n_loads += 1
                        if de.sharers or msi:
                            new_state = S_ST
                            de.owner = None
                            de.sharers.add(tid)
                        else:
                            new_state = E_ST
                            de.owner = tid
                            sh = de.sharers
                            sh.clear()
                            sh.add(tid)
                    else:
                        n_stores += 1
                        new_state = M_ST
                        de.owner = tid
                        sh = de.sharers
                        sh.clear()
                        sh.add(tid)
                    # install, evicting the set's LRU valid line if full;
                    # the victim is private (a shared victim bails above),
                    # so its CacheLine object can be reused for the fill
                    if ent is not None:
                        del s[line]
                    victim = None
                    while len(s) >= ways:
                        _, old = s.popitem(last=False)
                        if old.state is not INV:
                            victim = old
                            break
                    if victim is not None:
                        d_ev += 1
                        vline = victim.line_addr
                        ve = directory.get(vline)
                        if ve is None:
                            ve = directory[vline] = DirectoryEntry()
                        if victim.state is M_ST:
                            d_wb += 1
                            ve.in_l2 = True
                            if bus_lat is not None:
                                lat += bus_lat
                            else:
                                rl = req_memo.get(vline)
                                if rl is None:
                                    rl = req_memo[vline] = mesh_req(tid, vline)
                                lat += rl
                        if ve.owner == tid:
                            ve.owner = None
                        ve.sharers.discard(tid)
                        victim.line_addr = line
                        victim.state = new_state
                        s[line] = victim
                    else:
                        s[line] = CacheLine(line, new_state)
                    busy += lat
                    executed += 1
                core.instructions_retired += instr + n_loads + n_stores
                core.loads += n_loads
                core.stores += n_stores
                if busy:
                    stats.add_busy(phase, tid, busy)
                    ctx.clock += busy
                if n_loads or n_stores:
                    l1.hits += d_l1h
                    l1.misses += d_l1m
                    l1.evictions += d_ev
                    st.reads += n_loads
                    st.writes += n_stores
                    st.l1_hits += d_l1h
                    st.l1_misses += d_l1m
                    st.l2_hits += d_l2h
                    st.memory_fetches += d_mem
                    st.upgrades += d_upg
                    st.writebacks += d_wb
                    charge(phase, before)
                ops_executed += executed
                if bailed:
                    # park: the offending op must run at its global order
                    # through the full protocol path; the rest of the
                    # segment resumes eagerly afterwards
                    burst_fallbacks += 1
                    ctx.pending = e.ops[executed]
                    tail = executed + 1
                    if tail < len(e.ops):
                        entries[i] = _Seg(
                            e.kinds[tail:], e.args[tail:], e.ops[tail:],
                            sum(1 for k in e.kinds[tail:] if k != _COMPUTE),
                        )
                    else:
                        i += 1
                    ctx.ip = i
                    ctx.state = _PENDING
                    return
                i += 1
            elif t is PhaseBegin:
                ops_executed += 1
                ctx.phase_stack.append(e.phase)
                stats.note_begin(e.phase, ctx.clock)
                i += 1
            elif t is PhaseEnd:
                ops_executed += 1
                if not ctx.phase_stack or ctx.phase_stack[-1] != e.phase:
                    raise TraceError(
                        f"thread {tid}: PhaseEnd({e.phase!r}) does not match "
                        f"open phases {ctx.phase_stack}"
                    )
                ctx.phase_stack.pop()
                stats.note_end(e.phase, ctx.clock)
                i += 1
            else:
                # sync point: shared access, barrier, lock or unlock
                ctx.pending = e
                ctx.ip = i + 1
                ctx.state = _PENDING
                return
        ctx.ip = i
        if ctx.held_locks:
            raise TraceError(
                f"thread {tid} finished holding locks {sorted(ctx.held_locks)}"
            )
        if ctx.phase_stack:
            raise TraceError(
                f"thread {tid} finished inside phases {ctx.phase_stack}"
            )
        ctx.state = _DONE

    def release_barrier(bid: int) -> None:
        arrivals = barrier_arrivals.pop(bid)
        release = max(arrivals.values()) + config.barrier_release_latency
        for tid, arrived_at in arrivals.items():
            ctx = threads[tid]
            stats.add_wait(ctx.current_phase(), tid, release - arrived_at)
            ctx.clock = release
            ctx.state = _RUNNABLE

    def dispatch_sync(ctx: _Thread, op) -> None:
        """One globally-ordered op through the full protocol path —
        semantics identical to the reference scheduler's ``step``."""
        nonlocal ops_executed
        ops_executed += 1
        t = type(op)
        if t is Load or t is Store:
            phase = ctx.current_phase()
            before = snap()
            core = cores[ctx.tid]
            if t is Load:
                cycles = core.load_cycles(op.addr, ctx.clock)
            else:
                cycles = core.store_cycles(op.addr, ctx.clock)
            charge(phase, before)
            stats.add_busy(phase, ctx.tid, cycles)
            ctx.clock += cycles
            ctx.state = _RUNNABLE
        elif t is Barrier:
            arrivals = barrier_arrivals.setdefault(op.barrier_id, {})
            if ctx.tid in arrivals:
                raise TraceError(
                    f"thread {ctx.tid} hit barrier {op.barrier_id} twice "
                    "before release"
                )
            arrivals[ctx.tid] = ctx.clock
            ctx.state = _AT_BARRIER
            if len(arrivals) == program.n_threads:
                release_barrier(op.barrier_id)
        elif t is Lock:
            if op.lock_id not in lock_holder:
                lock_holder[op.lock_id] = ctx.tid
                ctx.held_locks.add(op.lock_id)
                cycles = config.lock_acquire_latency
                stats.add_busy(ctx.current_phase(), ctx.tid, cycles)
                ctx.clock += cycles
                ctx.state = _RUNNABLE
            else:
                lock_waiters.setdefault(op.lock_id, []).append(ctx.tid)
                ctx.state = _WAIT_LOCK
        elif t is Unlock:
            if lock_holder.get(op.lock_id) != ctx.tid:
                raise TraceError(
                    f"thread {ctx.tid} unlocked lock {op.lock_id} it does not hold"
                )
            del lock_holder[op.lock_id]
            ctx.held_locks.discard(op.lock_id)
            ctx.state = _RUNNABLE
            waiters = lock_waiters.get(op.lock_id)
            if waiters:
                next_tid = waiters.pop(0)
                w = threads[next_tid]
                wait = max(w.clock, ctx.clock) - w.clock
                stats.add_wait(w.current_phase(), next_tid, wait)
                w.clock = max(w.clock, ctx.clock)
                lock_holder[op.lock_id] = next_tid
                w.held_locks.add(op.lock_id)
                cycles = config.lock_acquire_latency
                stats.add_busy(w.current_phase(), next_tid, cycles)
                w.clock += cycles
                w.state = _RUNNABLE
        else:  # pragma: no cover - exhaustive over sync ops
            raise TraceError(f"unknown op {op!r}")

    # epoch loop: eager-advance everyone, then drain sync ops in the
    # reference global order, re-advancing threads as they unblock
    for ctx in threads:
        advance(ctx)
    while True:
        pending = [t for t in threads if t.state == _PENDING]
        if not pending:
            if all(t.state == _DONE for t in threads):
                break
            states = {0: "runnable", 1: "pending", 2: "barrier", 3: "lock", 4: "done"}
            stuck = {
                t.tid: states[t.state] for t in threads if t.state != _DONE
            }
            raise DeadlockError(
                f"no runnable threads; blocked: {stuck} "
                f"(pending barriers: {list(barrier_arrivals)}, "
                f"held locks: {lock_holder})"
            )
        nxt = min(pending, key=lambda t: (t.clock, t.tid))
        op = nxt.pending
        nxt.pending = None
        dispatch_sync(nxt, op)
        for ctx in threads:
            if ctx.state == _RUNNABLE:
                advance(ctx)

    return SimulationResult(
        program_name=program.name,
        n_threads=program.n_threads,
        n_cores=config.n_cores,
        total_cycles=max(t.clock for t in threads),
        thread_cycles=tuple(t.clock for t in threads),
        phase_stats=stats,
        coherence=coherence.stats,
        instructions=tuple(c.instructions_retired for c in cores),
        coherence_by_phase=phase_coherence,
        engine="batch",
        n_ops=ops_executed,
        n_bursts=compiled.n_bursts,
        n_fused_ops=compiled.n_fused_ops,
        n_burst_fallbacks=burst_fallbacks,
    )
