"""Benchmark: regenerate Fig 3 (scalability prediction, Amdahl vs extended).

Uses the paper's own Table II parameters, so this is an exact reproduction:
Amdahl's curves keep climbing to 256 cores while the extended model's taper
off at far fewer cores.
"""

from repro.experiments import run_experiment


def test_fig3_prediction(benchmark, save_report):
    report = benchmark(run_experiment, "fig3")
    save_report(report)
    assert report.all_match, report.render()

    for app in ("kmeans", "fuzzy", "hop"):
        data = report.raw[app]
        amdahl, extended = data["amdahl"], data["extended"]
        # Amdahl monotone to 256; extended strictly below it from 2 cores on
        assert all(b >= a for a, b in zip(amdahl, amdahl[1:]))
        assert all(e < a for a, e in zip(amdahl[1:], extended[1:]))

    # hop peaks earliest (superlinear growth), fuzzy latest (smallest s)
    peaks = {app: report.raw[app]["peak"][0] for app in ("kmeans", "fuzzy", "hop")}
    assert peaks["hop"] < peaks["kmeans"] < peaks["fuzzy"]
