"""Ablation benchmarks: design-choice probes beyond the paper's figures.

These exercise the knobs DESIGN.md calls out: the perf(r) exponent, the
interconnect topology behind growcomm, the reduction-strategy choice
measured on the simulator, and the optimal-r surface over the parameter
cube.
"""

import numpy as np

from repro.experiments import run_experiment


def test_ablation_perf_exponent(benchmark, save_report):
    report = benchmark(run_experiment, "ablation-perf")
    save_report(report)
    assert report.all_match, report.render()
    rows = report.raw["rows"]
    # with perfect area returns (theta=1) bigger cores are free, so the
    # optimum uses at least as large cores as the paper's sqrt law
    by_theta = {theta: r for theta, r, _ in rows}
    assert by_theta[1.0] >= by_theta[0.5]


def test_ablation_topology(benchmark, save_report):
    report = benchmark(run_experiment, "ablation-topology")
    save_report(report)
    assert report.all_match, report.render()
    peaks = report.raw["peaks"]
    # Eq 8's closed form sits between the exact mesh and the exact ring
    assert peaks["mesh (exact)"] >= peaks["mesh (Eq 8)"] >= peaks["ring (exact)"]


def test_ablation_reduction_strategy(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_experiment("ablation-reduction", scale=0.06),
        rounds=1, iterations=1,
    )
    save_report(report)
    assert report.all_match, report.render()
    rows = report.raw["rows"]
    # measured on the simulator: tree merge grows slower than serial merge
    assert rows["tree"]["growth"] < rows["serial"]["growth"]


def test_ablation_optimal_r_map(benchmark, save_report):
    report = benchmark(run_experiment, "ablation-rmap")
    save_report(report)
    assert report.all_match, report.render()
    grid = report.raw["grid"]
    assert np.all(np.diff(grid, axis=1) >= 0)  # fewer, larger cores


def test_ablation_machine_model(benchmark, save_report):
    """Extracted parameters are robust across DRAM/bus/NoC/protocol models."""
    report = benchmark.pedantic(
        lambda: run_experiment("ablation-machine"), rounds=1, iterations=1
    )
    save_report(report)
    assert report.all_match, report.render()
