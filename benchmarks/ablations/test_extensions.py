"""Benchmarks for the extension experiments (the paper's future work plus
beyond-scope probes)."""

from repro.experiments import run_experiment


def test_ext_critical_sections(benchmark, save_report):
    report = benchmark(run_experiment, "ext-critical")
    save_report(report)
    assert report.all_match, report.render()


def test_ext_energy(benchmark, save_report):
    report = benchmark(run_experiment, "ext-energy")
    save_report(report)
    assert report.all_match, report.render()


def test_ext_scaled(benchmark, save_report):
    report = benchmark(run_experiment, "ext-scaled")
    save_report(report)
    assert report.all_match, report.render()


def test_ext_contention(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_experiment("ext-contention"), rounds=1, iterations=1
    )
    save_report(report)
    assert report.all_match, report.render()


def test_ext_acmp_simulation(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_experiment("ext-acmp-sim"), rounds=1, iterations=1
    )
    save_report(report)
    assert report.all_match, report.render()


def test_ext_crossover_simulation(benchmark, save_report):
    """Conclusion (b) with no analytic model in the loop: an interior core
    size wins on a simulated merge-heavy workload."""
    report = benchmark.pedantic(
        lambda: run_experiment("ext-crossover-sim"), rounds=1, iterations=1
    )
    save_report(report)
    assert report.all_match, report.render()
    cycles = report.raw["cycles"]
    assert min(cycles, key=cycles.get) not in (1, 16)


def test_ext_falsesharing(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_experiment("ext-falsesharing"), rounds=1, iterations=1
    )
    save_report(report)
    assert report.all_match, report.render()


def test_ext_locked_reduction(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_experiment("ext-locked-reduction"), rounds=1, iterations=1
    )
    save_report(report)
    assert report.all_match, report.render()


def test_ext_mix(benchmark, save_report):
    report = benchmark(run_experiment, "ext-mix")
    save_report(report)
    assert report.all_match, report.render()
