"""Benchmarks: Figs 1 and 6 (fraction-decomposition diagrams)."""

from repro.experiments import run_experiment


def test_fig1_serial_split(benchmark, save_report):
    report = benchmark(run_experiment, "fig1")
    save_report(report)
    assert report.all_match, report.render()


def test_fig6_reduction_split(benchmark, save_report):
    report = benchmark(run_experiment, "fig6")
    save_report(report)
    assert report.all_match, report.render()
