"""Benchmark: regenerate Table II (application parameters from simulation).

The paper measures kmeans/fuzzy/hop on SESC up to 16 cores and reports the
serial fraction and its fcon/fred/fored decomposition.  We sweep the same
workloads on our simulator.  Absolute percentages depend on dataset scale;
the asserted shape is the paper's: tiny serial fractions, a substantial
reduction share, positive growth for all three, superlinear for hop, and a
kmeans fcon/fred split near 57/43.
"""

from repro.experiments import run_experiment


def test_table2_application_parameters(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_experiment("table2", scale=0.12),
        rounds=1, iterations=1,
    )
    save_report(report)
    assert report.all_match, report.render()

    extracted = report.raw["extracted"]
    # paper shape: hop has the biggest constant share, fuzzy the smallest
    # serial fraction of the two center-based methods
    assert extracted["hop"].fcon_share > extracted["kmeans"].fcon_share
    assert extracted["fuzzy"].serial_pct < extracted["kmeans"].serial_pct
    # all three applications are overwhelmingly parallel
    for name, ep in extracted.items():
        assert ep.serial_pct < 2.0, name
