"""Benchmark: regenerate Table IV (dataset sensitivity).

Sweeps kmeans/fuzzy over the dim/point/center-scaled variants and hop over
default/medium particle sets, asserting the paper's trends: scaling points
raises f; scaling dimensions or centers leaves the shares roughly
unchanged; hop's merge share rises on the larger set.
"""

from repro.experiments import run_experiment


def test_table4_dataset_sensitivity(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_experiment("table4", scale=0.06),
        rounds=1, iterations=1,
    )
    save_report(report)
    assert report.all_match, report.render()

    extracted = report.raw["extracted"]
    # all ten Table IV rows regenerated
    assert len(extracted) == 10
    # every variant stays overwhelmingly parallel (f > 0.98)
    for label, ep in extracted.items():
        assert ep.serial_pct < 2.0, label
