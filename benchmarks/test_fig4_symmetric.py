"""Benchmark: regenerate Fig 4 (symmetric-CMP design sweeps, 4 panels).

Exact reproduction of Eq 4 over the paper's grid; the peak values the text
quotes (104.5, 67.1, 36.2, 47.6) are asserted to 1%.
"""

import numpy as np

from repro.experiments import run_experiment


def test_fig4_symmetric_sweeps(benchmark, save_report):
    report = benchmark(run_experiment, "fig4")
    save_report(report)
    assert report.all_match, report.render()


def test_fig4_peak_structure(save_report):
    report = run_experiment("fig4")
    curves, sizes = report.raw["curves"], report.raw["sizes"]

    # higher overhead panels peak at larger r for the same f (conclusion (b))
    for f in (0.999, 0.99):
        r_low = sizes[int(np.argmax(curves[("c", f, "Linear")]))]
        r_high = sizes[int(np.argmax(curves[("d", f, "Linear")]))]
        assert r_high >= r_low

    # Log growth dominates Linear pointwise
    for key, sp in curves.items():
        panel, f, label = key
        if label == "Linear":
            assert np.all(curves[(panel, f, "Log")] >= sp - 1e-9)

    # every curve ends at perf(256) = 16 when the whole chip is one core
    for sp in curves.values():
        assert sp[-1] == 16.0
