"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures, asserts
the qualitative shape (who wins, where peaks fall), and writes the rendered
report to ``benchmarks/reports/<experiment>.txt`` so the regenerated
rows/series are inspectable after the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def save_report(report_dir):
    """Write an ExperimentReport's rendering to the reports directory."""

    def _save(report) -> None:
        path = report_dir / f"{report.experiment_id}.txt"
        path.write_text(report.render() + "\n")

    return _save
