"""Benchmark: regenerate Table I (baseline configuration)."""

from repro.experiments import run_experiment


def test_table1_baseline_configuration(benchmark, save_report):
    report = benchmark(run_experiment, "table1")
    save_report(report)
    text = report.render()
    # the Table I rows
    assert "32, 16, 64" in text
    assert "16K/64K 2/4 way private" in text
    assert "4M 16 way shared, MESI" in text
    assert "2level GAp 2048 entr., 512" in text
