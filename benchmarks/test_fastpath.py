"""Engine regression benchmarks: fast and batch vs the reference engine.

Three trace shapes, each run through all three engines (``reference``,
the fused ``fast`` path, and the lockstep ``batch`` interpreter) so the
harness (`scripts/run_bench.py`) can compute the speedup ratios it
records in ``BENCH_simx.json``:

* **private-burst** — long runs of thread-private Compute/Load/Store, the
  shape the fused engines exist for (fast acceptance bar: >= 3x);
* **shared-heavy** — mostly shared lines, so almost nothing fuses; the
  optimised engines must not regress this (compilation overhead stays
  negligible);
* **kmeans-mix** — a real workload trace at sweep scale, the honest
  end-to-end number (batch acceptance bar: >= 2x over fast).

Each test stores the trace's op count in ``benchmark.extra_info`` so
ops/sec can be derived from the benchmark JSON.
"""

import pytest

from repro.simx import (
    Compute,
    Load,
    Machine,
    MachineConfig,
    Store,
    ThreadTrace,
    TraceProgram,
)

LINE = 64


def _count_ops(prog: TraceProgram) -> int:
    return sum(len(t.ops) for t in prog.threads)


def private_burst_program(n_threads: int = 4, n_rounds: int = 800) -> TraceProgram:
    """Streams over per-thread private lines: nearly everything fuses."""
    threads = []
    for tid in range(n_threads):
        base = (0x1000 + tid * 0x1000) * LINE
        ops = []
        for i in range(n_rounds):
            ops.append(Compute(40))
            ops.append(Load(base + (i % 256) * LINE))
            ops.append(Store(base + (i % 64) * LINE))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("private-burst", threads)


def shared_heavy_program(n_threads: int = 4, n_rounds: int = 600) -> TraceProgram:
    """All threads hammer the same 32 lines: almost nothing fuses."""
    threads = []
    for tid in range(n_threads):
        ops = []
        for i in range(n_rounds):
            ops.append(Compute(20))
            ops.append(Load(((i + tid) % 32) * LINE))
            ops.append(Store(((i * 3 + tid) % 32) * LINE))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("shared-heavy", threads)


def kmeans_mix_program(p: int = 8) -> TraceProgram:
    """A real kmeans trace at the scale the Table II sweeps use."""
    from repro.workloads.datasets import make_blobs
    from repro.workloads.kmeans import KMeansWorkload
    from repro.workloads.tracegen import program_from_execution

    wl = KMeansWorkload(
        make_blobs(1800, 9, 8, seed=11, label="bench"),
        max_iterations=3, tolerance=1e-12,
    )
    return program_from_execution(wl.execute(p), mem_scale=2)


ENGINE_KNOBS = {
    "fast": dict(fast_path=True, batch_path=False),
    "reference": dict(fast_path=False, batch_path=False),
    "batch": dict(batch_path=True),
}


def _bench(benchmark, prog: TraceProgram, engine: str, n_cores: int = 16):
    machine = Machine(MachineConfig(n_cores=n_cores, **ENGINE_KNOBS[engine]))
    benchmark.extra_info["n_ops"] = _count_ops(prog)
    benchmark.extra_info["engine"] = engine
    result = benchmark(machine.run, prog)
    assert result.engine == engine
    assert result.total_cycles > 0
    return result


@pytest.mark.parametrize("engine", list(ENGINE_KNOBS))
def test_private_burst(benchmark, engine):
    _bench(benchmark, private_burst_program(), engine)


@pytest.mark.parametrize("engine", list(ENGINE_KNOBS))
def test_shared_heavy(benchmark, engine):
    _bench(benchmark, shared_heavy_program(), engine)


@pytest.mark.parametrize("engine", list(ENGINE_KNOBS))
def test_kmeans_mix(benchmark, engine):
    _bench(benchmark, kmeans_mix_program(), engine)


def test_all_engines_agree():
    """Guard (also with --benchmark-disable): all engines, same results."""
    for prog in (private_burst_program(n_rounds=60),
                 shared_heavy_program(n_rounds=60)):
        ref = Machine(MachineConfig(n_cores=16, fast_path=False)).run(prog)
        for engine, knobs in ENGINE_KNOBS.items():
            if engine == "reference":
                continue
            got = Machine(MachineConfig(n_cores=16, **knobs)).run(prog)
            assert got.total_cycles == ref.total_cycles
            assert got.thread_cycles == ref.thread_cycles
            assert got.coherence == ref.coherence
