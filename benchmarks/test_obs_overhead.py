"""Observability overhead benchmarks: disabled must be free, enabled cheap.

Runs the same simulator workload three ways so ``scripts/run_bench.py``
can compute overhead ratios from the benchmark JSON:

* **obs-disabled** — the shipping default; the acceptance bar is ops/sec
  within 2% of the uninstrumented ``Machine._run`` loop (also asserted
  directly by ``tests/obs/test_overhead.py``);
* **obs-enabled** — full metric + span recording; the simulator batches
  its accounting per run, so even this stays cheap;
* **bare-loop** — ``Machine._run`` without the observability wrapper,
  the reference denominator.

Each test stores the trace's op count in ``benchmark.extra_info`` so
ops/sec can be derived from the benchmark JSON.
"""

import pytest

from repro import obs
from repro.simx import (
    Compute,
    Load,
    Machine,
    MachineConfig,
    Store,
    ThreadTrace,
    TraceProgram,
)

LINE = 64


def _count_ops(prog: TraceProgram) -> int:
    return sum(len(t.ops) for t in prog.threads)


def mixed_program(n_threads: int = 4, n_rounds: int = 600) -> TraceProgram:
    threads = []
    for tid in range(n_threads):
        base = (0x2000 + tid * 0x1000) * LINE
        ops = []
        for i in range(n_rounds):
            ops.append(Compute(30))
            ops.append(Load(base + (i % 128) * LINE))
            ops.append(Store(base + (i % 32) * LINE))
        threads.append(ThreadTrace(tid, ops))
    return TraceProgram("obs-overhead-mix", threads)


@pytest.fixture
def clean_obs():
    obs.set_enabled(False)
    obs.reset()
    obs.RECORDER.clear()
    yield
    obs.set_enabled(False)
    obs.reset()
    obs.RECORDER.clear()


def _bench(benchmark, mode: str, clean=None):
    prog = mixed_program()
    machine = Machine(MachineConfig(n_cores=8))
    benchmark.extra_info["n_ops"] = _count_ops(prog)
    benchmark.extra_info["obs_mode"] = mode
    if mode == "enabled":
        obs.set_enabled(True)
    target = machine._run if mode == "bare" else machine.run
    result = benchmark(target, prog)
    assert result.total_cycles > 0
    return result


def test_obs_disabled(benchmark, clean_obs):
    _bench(benchmark, "disabled")


def test_obs_enabled(benchmark, clean_obs):
    result = _bench(benchmark, "enabled")
    assert obs.REGISTRY.get("simx_ops_total").value() >= result.n_ops


def test_bare_loop(benchmark, clean_obs):
    _bench(benchmark, "bare")
