"""Benchmark: regenerate Table III (application classes)."""

from repro.experiments import run_experiment


def test_table3_application_classes(benchmark, save_report):
    report = benchmark(run_experiment, "table3")
    save_report(report)
    rows = report.tables[0].rows
    assert len(rows) == 8
    # the exact parameter grid of the paper
    f_values = {row[3] for row in rows}
    assert f_values == {"0.999", "0.99"}
    fcon_values = {row[4] for row in rows}
    assert fcon_values == {"90", "60"}
    fored_values = {row[5] for row in rows}
    assert fored_values == {"10", "80"}
