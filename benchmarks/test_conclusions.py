"""Benchmark: the paper's Section VII conclusions over a 48-point grid."""

from repro.experiments import run_experiment


def test_conclusions_hold_across_design_space(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_experiment("conclusions"), rounds=1, iterations=1
    )
    save_report(report)
    assert report.all_match, report.render()

    means = report.raw["means"]
    # the quantitative spine of conclusion (c): at 80% overhead the mean
    # advantage is ~1.3x while Amdahl promises ~1.9x
    assert means[0.8] < 1.5
    assert report.raw["amdahl_means"][0.8] > 1.7
