"""Benchmark: regenerate Fig 7 (communication-aware model, 2 panels).

Exact reproduction of Eqs 6–8: parallel reduction on a 2D mesh.  Peaks
46.6 (sym, r=8) and 51.6 (asym, r=4) asserted to 0.5%.
"""

from repro.experiments import run_experiment


def test_fig7_communication(benchmark, save_report):
    report = benchmark(run_experiment, "fig7")
    save_report(report)
    assert report.all_match, report.render()


def test_fig7_quantitative_anchors():
    report = run_experiment("fig7")
    sizes, sym = report.raw["symmetric"]
    peaks = report.raw["asymmetric_peaks"]
    assert abs(float(sym.max()) - 46.6) < 0.2
    assert abs(max(peaks.values()) - 51.6) < 0.2
    # communication pushes the symmetric optimum from Hill-Marty's r=2 to r=8
    import numpy as np

    assert sizes[int(np.argmax(sym))] == 8.0
