"""Micro-benchmarks: library throughput (not a paper artifact).

Keeps an eye on the two hot paths — vectorised model evaluation (sweeps
must stay O(microseconds)) and the discrete-event simulator's
operations-per-second (which bounds feasible dataset scales).
"""

import numpy as np

from repro.core import merging
from repro.core.params import AppParams
from repro.simx import Compute, Load, Machine, MachineConfig, Store, ThreadTrace, TraceProgram


def test_model_sweep_throughput(benchmark):
    """A full Fig-4 panel (36 model evaluations) per call."""
    params = AppParams(f=0.99, fcon_share=0.6, fored_share=0.8)
    sizes = merging.power_of_two_sizes(256)

    def sweep():
        out = []
        for f in (0.999, 0.99):
            p = params.with_(f=f)
            for g in ("linear", "log"):
                out.append(merging.speedup_symmetric(p, 256, sizes, g))
        return out

    result = benchmark(sweep)
    assert all(np.all(np.asarray(r) > 0) for r in result)


def test_simulator_op_throughput(benchmark):
    """Simulated ops per call: 4 threads x 3000 mixed ops."""
    machine = Machine(MachineConfig.baseline(n_cores=4))

    def build_and_run():
        threads = []
        for tid in range(4):
            ops = []
            base = 0x100000 * (tid + 1)
            for i in range(1000):
                ops.append(Compute(40))
                ops.append(Load(base + (i % 256) * 64))
                ops.append(Store(base + (i % 64) * 64))
            threads.append(ThreadTrace(tid, ops))
        return machine.run(TraceProgram("micro", threads))

    result = benchmark(build_and_run)
    assert result.total_cycles > 0


def test_conclusions_grid_vectorized(benchmark):
    """The conclusions experiment's 48-point design-space sweep as one
    vectorized ``gridkernels.conclusions_grid`` call (acceptance bar:
    >= 5x over the scalar loop below)."""
    from repro.core import gridkernels
    from repro.experiments import conclusions

    pts = [(p.f, p.fcon_share, p.fored_share) for p in conclusions._grid()]
    f = np.array([p[0] for p in pts])
    c = np.array([p[1] for p in pts])
    o = np.array([p[2] for p in pts])
    benchmark.extra_info["n_points"] = len(pts)

    out = benchmark(gridkernels.conclusions_grid, f, c, o, 256)
    assert all(v.shape == (len(pts),) for v in out.values())


def test_conclusions_grid_scalar(benchmark):
    """The same 48 points through the per-point scalar optimisers — the
    baseline the vectorized kernel is measured against."""
    from repro.experiments import conclusions

    pts = [(p.f, p.fcon_share, p.fored_share) for p in conclusions._grid()]
    benchmark.extra_info["n_points"] = len(pts)

    def sweep():
        return [conclusions.evaluate_point(f, c, o, 256) for f, c, o in pts]

    rows = benchmark(sweep)
    assert len(rows) == len(pts)


def test_asymmetric_sweep_throughput(benchmark):
    """A full Fig-5 panel (3 r-curves over the rl grid)."""
    params = AppParams(f=0.99, fcon_share=0.9, fored_share=0.8)

    def sweep():
        return [
            merging.sweep_asymmetric(params, 256, r=r)[1] for r in (1.0, 4.0, 16.0)
        ]

    curves = benchmark(sweep)
    assert all(c.size > 0 for c in curves)


def test_coherence_protocol_throughput(benchmark):
    """MESI transactions per call: a mixed read/write/share stream."""
    from repro.simx.coherence import CoherenceController
    from repro.simx.config import MachineConfig

    def run_stream():
        c = CoherenceController(MachineConfig.baseline(n_cores=8))
        total = 0
        for i in range(2000):
            core = i % 8
            line = (i * 7) % 512
            if i % 3:
                total += c.read(core, line * 64)
            else:
                total += c.write(core, line * 64)
        return total

    assert benchmark(run_stream) > 0


def test_workload_execute_throughput(benchmark):
    """kmeans numeric execution + accounting (no simulation)."""
    from repro.workloads.datasets import make_blobs
    from repro.workloads.kmeans import KMeansWorkload

    wl = KMeansWorkload(
        make_blobs(4000, 9, 8, seed=1), max_iterations=3, tolerance=1e-12
    )
    ex = benchmark(wl.execute, 8)
    assert ex.n_iterations == 3


def test_tracegen_throughput(benchmark):
    """Compilation of a workload execution into a trace program."""
    from repro.workloads.datasets import make_blobs
    from repro.workloads.kmeans import KMeansWorkload
    from repro.workloads.tracegen import program_from_execution

    ex = KMeansWorkload(
        make_blobs(4000, 9, 8, seed=1), max_iterations=3, tolerance=1e-12
    ).execute(8)
    prog = benchmark(program_from_execution, ex)
    assert prog.n_threads == 8


def test_extraction_throughput(benchmark):
    """Parameter extraction from a 5-point breakdown set."""
    from repro.workloads.instrument import PhaseBreakdown, extract_parameters

    breakdowns = {
        p: PhaseBreakdown(
            n_threads=p, total=1e6 / p + 600 + 400 * (1 + 0.7 * (p - 1)),
            init=300, parallel=1e6 / p,
            reduction=400 * (1 + 0.7 * (p - 1)), serial=300,
        )
        for p in (1, 2, 4, 8, 16)
    }
    ep = benchmark(extract_parameters, breakdowns, "bench")
    assert ep.fored_rel > 0
