"""Benchmark: regenerate Fig 2 (application characterisation, 4 panels).

(a) scalability to 16 cores; (b) serial-section growth in simulation;
(c) the same on the modelled Xeon; (d) extended-model accuracy.
"""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig2_report():
    return run_experiment("fig2", scale=0.12, mem_scale=2)


def test_fig2_all_panels(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: run_experiment("fig2", scale=0.12, mem_scale=2),
        rounds=1, iterations=1,
    )
    save_report(report)
    assert report.all_match, report.render()


def test_fig2a_scalability_shape(fig2_report):
    speedups = fig2_report.raw["speedups"]
    # kmeans and fuzzy near-linear; hop visibly below them (paper: 13.5 vs 16)
    assert speedups["kmeans"][16] > 11
    assert speedups["fuzzy"][16] > 11
    assert speedups["hop"][16] < min(speedups["kmeans"][16], speedups["fuzzy"][16])


def test_fig2b_serial_growth_shape(fig2_report):
    growth = fig2_report.raw["growth"]
    for name, curve in growth.items():
        # strictly growing serial sections, not the constant 1.0 Amdahl assumes
        values = [curve[p] for p in sorted(curve)]
        assert values == sorted(values), name
        assert curve[16] > 1.5, name


def test_fig2c_hardware_growth_shape(fig2_report):
    hw = fig2_report.raw["hw_growth"]
    for name, curve in hw.items():
        assert curve[8] > curve[1], name


def test_fig2d_model_accuracy(fig2_report):
    # model tracks the measured growth within the ballpark the paper reports
    for c in fig2_report.comparisons:
        if "2(d)" in c.claim:
            assert c.matches(), c.claim
