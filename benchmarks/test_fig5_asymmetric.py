"""Benchmark: regenerate Fig 5 (asymmetric-CMP design sweeps, 8 panels).

Exact reproduction of Eq 5 over the paper's grid, including the headline
inversion: for non-embarrassingly-parallel, high-overhead applications the
classic one-big-plus-many-tiny ACMP (r=1) *loses* to a symmetric CMP,
contrary to the constant-serial-section prediction.
"""

import numpy as np

from repro.core import merging
from repro.core.classes import get_class
from repro.experiments import run_experiment


def test_fig5_asymmetric_sweeps(benchmark, save_report):
    report = benchmark(run_experiment, "fig5")
    save_report(report)
    assert report.all_match, report.render()


def test_fig5_headline_inversion():
    # Section V.D.2's core finding, panel (h) vs Fig 4(d):
    params = get_class("non-emb", "moderate", "high").params()
    report = run_experiment("fig5")
    curves = report.raw["curves"]
    acmp_r1_peak = float(np.nanmax(curves[("h", 1.0)][1]))
    cmp_best = merging.best_symmetric(params, 256)
    assert acmp_r1_peak < cmp_best.speedup          # 22.6 < 36.2
    assert abs(acmp_r1_peak - 22.6) < 0.3
    assert abs(cmp_best.speedup - 36.2) < 0.1


def test_fig5_acmp_advantage_claims():
    report = run_experiment("fig5")
    curves = report.raw["curves"]

    def peak(panel, r):
        return float(np.nanmax(curves[(panel, r)][1]))

    # high-constant high-overhead (d): ACMP still helps (64.2 vs CMP 47.6)
    params_d = get_class("non-emb", "high", "high").params()
    cmp_d = merging.best_symmetric(params_d, 256)
    assert peak("d", 4.0) > cmp_d.speedup
    # moderate-constant high-overhead (h): advantage shrinks (43.3 vs 36.2)
    params_h = get_class("non-emb", "moderate", "high").params()
    cmp_h = merging.best_symmetric(params_h, 256)
    best_h = max(peak("h", r) for r in (1.0, 4.0, 16.0))
    assert best_h / cmp_h.speedup < 1.3
