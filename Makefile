# Convenience targets for the reproduction workflow.

.PHONY: install test test-fast bench bench-raw experiments full-scale examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	PYTHONPATH=src python scripts/run_bench.py

bench-raw:
	pytest benchmarks/ --benchmark-only

experiments:
	python scripts/make_experiments_md.py

full-scale:
	python scripts/run_full_scale.py

examples:
	python examples/quickstart.py
	python examples/design_space_exploration.py
	python examples/custom_workload.py
	python examples/characterize_workload.py --fast
	python examples/reduction_strategies.py
	python examples/simulated_chip_design.py

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks benchmarks/reports
	find . -name __pycache__ -type d -exec rm -rf {} +
