"""Setup shim for environments without the `wheel` package (offline CI),
where `pip install -e . --no-use-pep517` needs a setup.py entry point.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
